// Package udpnet is the real-network provider: the same netapi interfaces
// the simulator implements, backed by UDP sockets and the wall clock, so an
// unmodified ADAPTIVE stack runs over loopback or a real LAN.
//
// Concurrency model: all protocol code for one provider runs on a single
// event loop goroutine. Socket readers and timer expirations post closures
// into the loop, preserving the no-locking discipline mechanisms are written
// against. State is split into three classes:
//
//   - loop-confined: the receive upcall always runs on the loop goroutine,
//     so protocol state behind it needs no locks.
//   - atomic: lifecycle flags (Provider/Endpoint closed), the receiver
//     slots, the per-endpoint Sent/Received/Dropped counters, and the
//     RCU-style host/group registry snapshot the send path reads without
//     taking any lock.
//   - mutex-guarded: the authoritative host and group registries (mutation
//     only — Open/Close/RegisterHost/RegisterGroup republish an immutable
//     snapshot), and each endpoint's send flush queue.
//
// The datapath mirrors netsim's interrupt-coalescing design on the real
// socket (DESIGN.md §5.18):
//
//   - Receive: the reader drains up to BatchSize datagrams per recvmmsg
//     syscall into a reused ring of frame buffers, copies each payload into
//     a pooled backstop-fronted slab, and posts ONE closure per batch into
//     the bounded loop queue — the queue amortizes a closure per batch, not
//     per packet, and the upcall side delivers the whole batch through the
//     optional netapi.BatchReceiver in a single call.
//   - Send: with FlushWindow > 0, frames are encoded into pooled scratch and
//     enqueued on a per-endpoint flush queue drained by one sendmmsg per
//     batch — when the queue reaches BatchSize (size flush) or when
//     FlushWindow elapses (window flush). FlushWindow == 0 keeps the
//     per-packet write path (one syscall per Send), the A/B baseline the
//     equivalence tests compare against, exactly like netsim's
//     DeliverPerPacket.
//
// Batch syscalls need OS support: on linux/amd64 the provider uses raw
// recvmmsg/sendmmsg (see batch_linux.go); everywhere else the same code
// shape runs over single-datagram reads and writes (batch_fallback.go), so
// behavior is identical and only the syscall amortization is lost.
//
// A reader that finds the loop queue full drops the batch and counts it
// (congestion loss, exactly the netapi.Endpoint.Send contract) instead of
// blocking the socket drain; when the queue is already full the per-packet
// copies are skipped too (counted in SkippedCopies). Shutdown is ordered:
// Provider.Close first closes every endpoint (flushing its send queue),
// waits for all reader goroutines to exit, then stops the loop — so no
// packet upcall can run after Close returns.
package udpnet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"adaptive/internal/backstop"
	"adaptive/internal/message"
	"adaptive/internal/netapi"
)

// maxPacket bounds received datagram size.
const maxPacket = 64 << 10

// frameOverhead is the provider frame header: srcHost uint32 | srcPort
// uint16, prepended to every datagram so one OS socket serves one netapi
// host with full source addressing.
const frameOverhead = 6

// maxBatch caps BatchSize: each endpoint's reader owns BatchSize frame
// buffers of maxPacket bytes, so the cap bounds per-endpoint memory (64
// frames = 4 MiB).
const maxBatch = 64

// Frame-train coalescing: consecutive same-destination frames in the flush
// queue ride one wire datagram, so the kernel's per-datagram cost (the
// dominant cost on the loopback path — syscall batching alone only shaves
// the entry overhead) is paid once per train instead of once per frame.
// Train layout:
//
//	[0..3]  0xFF 0xFF 0xFF 0xFF   marker (trainMarker: an impossible
//	                              source host — unicast sources never have
//	                              the multicast bit set, so a single
//	                              frame's header can't collide)
//	[4..5]  count  uint16 BE
//	[6..11] srcHost uint32 BE | srcPort uint16 BE (shared by all frames)
//	then count × { uint16 BE length | payload }
//
// Single frames — and everything in FlushWindow=0 mode — keep the exact
// pre-train wire format (6-byte header + payload), so per-packet mode is
// bitwise identical to the pre-batching provider on the wire.
const (
	trainMarker   = 0xFF                  // each of the first four bytes
	trainHdr      = 4 + 2 + frameOverhead // marker + count + src header
	trainRecHdr   = 2                     // per-frame length prefix
	maxTrainBytes = 60 << 10              // stay under the rx ring's maxPacket slots
	maxTrainCount = 128                   // frames per train (fits uint16 with margin)
)

// DefaultBatchSize is the rx/tx batch depth when Config.BatchSize is 0.
const DefaultBatchSize = 32

// Config carries the provider's tunables; zero values pick the defaults
// noted on each field.
type Config struct {
	// BindIP is the local address endpoints bind ("127.0.0.1" default).
	// Use a real interface address (or "0.0.0.0") to serve a LAN.
	BindIP string
	// QueueLen bounds the event-loop queue (default 4096). Packets that
	// arrive while the queue is full are dropped and counted.
	QueueLen int
	// ReadBuffer / WriteBuffer set the socket buffer sizes in bytes
	// (0 keeps the OS default). High-speed transfers want several MB.
	ReadBuffer, WriteBuffer int
	// BatchSize is the maximum datagrams moved per batch syscall and per
	// send flush (default DefaultBatchSize, capped at 64). 1 degenerates
	// to one datagram per syscall — the per-packet baseline.
	BatchSize int
	// FlushWindow enables send-side batching: frames queue on the
	// endpoint and are written by one sendmmsg when BatchSize accumulate
	// (size flush) or when this window elapses since the queue went
	// non-empty (window flush), whichever is first. 0 (the default)
	// keeps today's per-packet behavior: every Send is one socket write,
	// and a Send error is returned from that very call. With batching, a
	// write error surfaces on the Send that triggered the size flush, or
	// is counted (SendErrors) when a window flush hits it.
	FlushWindow time.Duration
	// TrainBytes bounds frame-train coalescing on the batched send path:
	// consecutive same-destination frames in a flush are packed into one
	// wire datagram up to this size, amortizing the kernel's
	// per-datagram cost across the train. 0 picks the default
	// (maxTrainBytes) when FlushWindow is active; negative disables
	// coalescing (every frame its own datagram — set this, or a value
	// near the path MTU, on real networks where oversized datagrams
	// would IP-fragment; loopback carries 60 KiB trains natively).
	TrainBytes int
}

// Option configures a Provider.
type Option func(*Config)

// WithBindIP sets the local IP endpoints bind (default 127.0.0.1).
func WithBindIP(ip string) Option { return func(c *Config) { c.BindIP = ip } }

// WithQueueLen bounds the event-loop queue.
func WithQueueLen(n int) Option { return func(c *Config) { c.QueueLen = n } }

// WithSocketBuffers sets the per-socket read/write buffer sizes in bytes.
func WithSocketBuffers(read, write int) Option {
	return func(c *Config) { c.ReadBuffer, c.WriteBuffer = read, write }
}

// WithBatch sets the batch depth for recvmmsg reads and sendmmsg flushes.
func WithBatch(n int) Option { return func(c *Config) { c.BatchSize = n } }

// WithFlushWindow enables send-side batching with the given flush window
// (0 keeps the per-packet write path).
func WithFlushWindow(d time.Duration) Option { return func(c *Config) { c.FlushWindow = d } }

// WithTrainBytes bounds frame-train coalescing (see Config.TrainBytes).
func WithTrainBytes(n int) Option { return func(c *Config) { c.TrainBytes = n } }

// hostAddr is one registry entry: the OS-level address of a host's socket,
// pre-resolved into every form the send paths need so no per-packet
// conversion (or allocation) happens.
type hostAddr struct {
	udp *net.UDPAddr   // for the portable single-write path
	ap  netip.AddrPort // for WriteToUDPAddrPort (allocation-free)
	ip4 [4]byte        // for sendmmsg sockaddr construction
	prt uint16
	v4  bool
}

func newHostAddr(ua *net.UDPAddr) *hostAddr {
	ha := &hostAddr{udp: ua, ap: ua.AddrPort()}
	if ip4 := ua.IP.To4(); ip4 != nil {
		copy(ha.ip4[:], ip4)
		ha.prt = uint16(ua.Port)
		ha.v4 = true
	}
	return ha
}

// registry is the immutable host/group snapshot the send path reads. The
// maps are never mutated after publication: mutators rebuild and atomically
// swap the whole snapshot (RCU), so sendTo resolves destinations without
// taking the provider mutex per packet.
type registry struct {
	hosts  map[netapi.HostID]*hostAddr
	groups map[netapi.HostID][]netapi.HostID
}

var emptyRegistry = &registry{}

// Provider maps netapi.HostID values onto UDP addresses.
type Provider struct {
	mu     sync.Mutex
	hosts  map[netapi.HostID]*hostAddr // authoritative; mutate under mu
	eps    map[netapi.HostID]*Endpoint // locally opened endpoints
	groups map[netapi.HostID][]netapi.HostID

	// reg is the published read-mostly snapshot of hosts+groups.
	reg atomic.Pointer[registry]

	cfg     Config
	loop    chan func()
	quit    chan struct{} // closed by Close after readers drain
	done    chan struct{} // closed when the loop goroutine exits
	closed  atomic.Bool
	readers sync.WaitGroup
	clock   clock

	// droppedPosts counts loop-queue overflow drops provider-wide (the
	// per-endpoint Dropped counters attribute the datagrams to a
	// receiver; this counts shed posts, i.e. whole batches).
	droppedPosts atomic.Uint64

	// Batch datapath counters (see BatchCounters).
	datagramsIn   atomic.Uint64 // wire datagrams read from sockets, provider-wide
	datagramsOut  atomic.Uint64 // wire datagrams written to sockets, provider-wide
	framesIn      atomic.Uint64 // protocol frames received (trains expanded)
	framesOut     atomic.Uint64 // protocol frames sent (trains counted per frame)
	batchesIn     atomic.Uint64 // batch reads that returned >= 1 datagram
	batchesOut    atomic.Uint64 // batch flush writes
	flushesSize   atomic.Uint64 // flushes triggered by a full queue
	flushesWindow atomic.Uint64 // flushes triggered by the flush window
	skippedCopies atomic.Uint64 // rx copies skipped (no receiver / full queue)
	fanoutErrs    atomic.Uint64 // per-member multicast send failures
	sendErrs      atomic.Uint64 // socket write errors on flush paths
	trainsOut     atomic.Uint64 // coalesced train datagrams written
	trainFrames   atomic.Uint64 // frames that rode in trains
	rehomedFrames atomic.Uint64 // queued frames redirected to a re-registered peer
}

// New returns a provider with a running event loop.
func New(opts ...Option) *Provider {
	cfg := Config{BindIP: "127.0.0.1", QueueLen: 4096, BatchSize: DefaultBatchSize}
	for _, fn := range opts {
		fn(&cfg)
	}
	if cfg.BindIP == "" {
		cfg.BindIP = "127.0.0.1"
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.BatchSize > maxBatch {
		cfg.BatchSize = maxBatch
	}
	if cfg.FlushWindow < 0 {
		cfg.FlushWindow = 0
	}
	switch {
	case cfg.TrainBytes < 0:
		cfg.TrainBytes = 0 // coalescing disabled
	case cfg.TrainBytes == 0:
		cfg.TrainBytes = maxTrainBytes
	case cfg.TrainBytes > maxTrainBytes:
		cfg.TrainBytes = maxTrainBytes
	}
	p := &Provider{
		hosts:  make(map[netapi.HostID]*hostAddr),
		eps:    make(map[netapi.HostID]*Endpoint),
		groups: make(map[netapi.HostID][]netapi.HostID),
		cfg:    cfg,
		loop:   make(chan func(), cfg.QueueLen),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	p.reg.Store(emptyRegistry)
	p.clock = clock{p: p, epoch: time.Now()}
	go p.run()
	return p
}

// publishLocked rebuilds the immutable registry snapshot from the
// authoritative maps. Call with p.mu held after any mutation.
func (p *Provider) publishLocked() {
	r := &registry{
		hosts:  make(map[netapi.HostID]*hostAddr, len(p.hosts)),
		groups: make(map[netapi.HostID][]netapi.HostID, len(p.groups)),
	}
	for h, a := range p.hosts {
		r.hosts[h] = a
	}
	for g, m := range p.groups {
		r.groups[g] = m
	}
	p.reg.Store(r)
}

func (p *Provider) run() {
	for {
		select {
		case fn := <-p.loop:
			fn()
		case <-p.quit:
			// Drain whatever was queued before shutdown, then stop.
			for {
				select {
				case fn := <-p.loop:
					fn()
				default:
					close(p.done)
					return
				}
			}
		}
	}
}

// Post schedules fn onto the provider's event loop (applications use this to
// interact with connections safely). It reports whether the closure was
// accepted; after Close it is a no-op returning false — there is no hidden
// recover, so real panics in protocol code propagate and crash loudly.
func (p *Provider) Post(fn func()) bool {
	if p.closed.Load() {
		return false
	}
	select {
	case p.loop <- fn:
		return true
	case <-p.quit:
		return false
	}
}

// tryPost is the packet path: never blocks; a full queue drops.
func (p *Provider) tryPost(fn func()) bool {
	if p.closed.Load() {
		return false
	}
	select {
	case p.loop <- fn:
		return true
	default:
		p.droppedPosts.Add(1)
		return false
	}
}

// loopFull reports whether the event-loop queue has no room right now. The
// reader consults it before copying a batch: when the queue is full the
// batch would be shed anyway, so the copies are skipped (and counted).
func (p *Provider) loopFull() bool { return len(p.loop) == cap(p.loop) }

// Wait runs fn on the loop and blocks until it completes (or the provider
// shuts down first, in which case fn may not run).
func (p *Provider) Wait(fn func()) {
	ch := make(chan struct{})
	if !p.Post(func() { fn(); close(ch) }) {
		return
	}
	select {
	case <-ch:
	case <-p.done:
	}
}

// DroppedPosts reports how many packet-batch upcalls the bounded loop queue
// shed.
func (p *Provider) DroppedPosts() uint64 { return p.droppedPosts.Load() }

// BatchCounters is a snapshot of the batched-datapath accounting.
type BatchCounters struct {
	// DatagramsIn / DatagramsOut are provider-wide wire-datagram totals;
	// FramesIn / FramesOut are protocol frames (a train datagram carries
	// many frames, so FramesOut / DatagramsOut is the send coalescing
	// factor).
	DatagramsIn, DatagramsOut uint64
	FramesIn, FramesOut       uint64
	// BatchesIn is how many receive batches arrived (DatagramsIn /
	// BatchesIn is the average rx batch depth — the syscall amortization
	// factor). BatchesOut counts send flushes the same way.
	BatchesIn, BatchesOut uint64
	// FlushesSize / FlushesWindow split BatchesOut by trigger: queue
	// reached BatchSize vs. the FlushWindow timer fired.
	FlushesSize, FlushesWindow uint64
	// SkippedCopies counts received datagrams dropped before their
	// payload copy: no receiver installed, or the loop queue already
	// full.
	SkippedCopies uint64
	// FanoutErrors counts per-member multicast send failures (the send
	// continues to remaining members; see Endpoint.Send).
	FanoutErrors uint64
	// SendErrors counts socket write errors on the batched flush path.
	SendErrors uint64
	// TrainsOut / TrainFrames count frame-train coalescing: TrainFrames
	// frames left the provider inside TrainsOut wire datagrams
	// (TrainFrames / TrainsOut is the average train depth).
	TrainsOut, TrainFrames uint64
}

// BatchCounters snapshots the batched-datapath accounting.
func (p *Provider) BatchCounters() BatchCounters {
	return BatchCounters{
		DatagramsIn:   p.datagramsIn.Load(),
		DatagramsOut:  p.datagramsOut.Load(),
		FramesIn:      p.framesIn.Load(),
		FramesOut:     p.framesOut.Load(),
		BatchesIn:     p.batchesIn.Load(),
		BatchesOut:    p.batchesOut.Load(),
		FlushesSize:   p.flushesSize.Load(),
		FlushesWindow: p.flushesWindow.Load(),
		SkippedCopies: p.skippedCopies.Load(),
		FanoutErrors:  p.fanoutErrs.Load(),
		SendErrors:    p.sendErrs.Load(),
		TrainsOut:     p.trainsOut.Load(),
		TrainFrames:   p.trainFrames.Load(),
	}
}

// SkippedCopies reports received datagrams dropped before their payload
// copy (no receiver installed, or loop queue already full).
func (p *Provider) SkippedCopies() uint64 { return p.skippedCopies.Load() }

// FanoutErrors reports per-member multicast send failures.
func (p *Provider) FanoutErrors() uint64 { return p.fanoutErrs.Load() }

// MetricCounters returns the provider's counters as read-at-scrape-time
// closures keyed by dotted metric names, in the shape the observability
// plane's Observe.Counters field consumes — pass the result (or a merge of
// several providers') to adaptive.WithObservability to publish the batch
// datapath on /metrics. avg_batch_in_milli is the average receive batch
// depth ×1000 (counters are integral), i.e. 32000 means a full
// BatchSize=32 on every recvmmsg.
func (p *Provider) MetricCounters() map[string]func() uint64 {
	return map[string]func() uint64{
		"udpnet.datagrams_in":   p.datagramsIn.Load,
		"udpnet.datagrams_out":  p.datagramsOut.Load,
		"udpnet.frames_in":      p.framesIn.Load,
		"udpnet.frames_out":     p.framesOut.Load,
		"udpnet.batches_in":     p.batchesIn.Load,
		"udpnet.batches_out":    p.batchesOut.Load,
		"udpnet.flushes_size":   p.flushesSize.Load,
		"udpnet.flushes_window": p.flushesWindow.Load,
		"udpnet.skipped_copies": p.skippedCopies.Load,
		"udpnet.fanout_errors":  p.fanoutErrs.Load,
		"udpnet.send_errors":    p.sendErrs.Load,
		"udpnet.dropped_posts":  p.droppedPosts.Load,
		"udpnet.trains_out":     p.trainsOut.Load,
		"udpnet.train_frames":   p.trainFrames.Load,
		"udpnet.rehomed_frames": p.rehomedFrames.Load,
		"udpnet.avg_batch_in_milli": func() uint64 {
			b := p.batchesIn.Load()
			if b == 0 {
				return 0
			}
			return 1000 * p.datagramsIn.Load() / b
		},
	}
}

// Close shuts the provider down in order: close every endpoint (which
// flushes its send queue and unblocks its reader), wait for the readers to
// drain, then stop the event loop and wait for it to finish the queued
// work. Idempotent.
func (p *Provider) Close() {
	if p.closed.Swap(true) {
		<-p.done
		return
	}
	p.mu.Lock()
	eps := make([]*Endpoint, 0, len(p.eps))
	for _, ep := range p.eps {
		eps = append(eps, ep)
	}
	p.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	p.readers.Wait()
	close(p.quit)
	<-p.done
}

// RegisterGroup declares a software multicast group: sends to it fan out as
// unicast datagrams to each member (usable where IP multicast is not).
func (p *Provider) RegisterGroup(group netapi.HostID, members ...netapi.HostID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.groups[group] = append([]netapi.HostID(nil), members...)
	p.publishLocked()
}

// RegisterHost maps a remote host ID onto a UDP address ("10.0.0.7:9000"),
// so endpoints on this provider can reach peers opened by another provider
// instance on a different machine. Locally opened hosts register themselves.
func (p *Provider) RegisterHost(host netapi.HostID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp4", addr)
	if err != nil {
		return fmt.Errorf("udpnet: resolving %q: %w", addr, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, local := p.eps[host]; local {
		return fmt.Errorf("udpnet: host %v is opened locally", host)
	}
	p.hosts[host] = newHostAddr(ua)
	p.publishLocked()
	return nil
}

// clock is wall time relative to the provider epoch.
type clock struct {
	p     *Provider
	epoch time.Time
}

var _ netapi.Clock = clock{}

func (c clock) Now() time.Duration { return time.Since(c.epoch) }

func (c clock) AfterFunc(d time.Duration, fn func()) netapi.Timer {
	t := &timer{}
	// Timer callbacks are control-plane work: use the blocking Post (a
	// full queue delays the timer rather than dropping protocol events).
	t.t = time.AfterFunc(d, func() { c.p.Post(fn) })
	return t
}

type timer struct{ t *time.Timer }

func (t *timer) Stop() bool { return t.t.Stop() }

// Clock implements netapi.Provider.
func (p *Provider) Clock() netapi.Clock { return p.clock }

// outMsg is one wire datagram: either a single framed packet or a
// coalesced train of them. On the flush queue (ep.sq) every entry is a
// single frame; packTrains turns runs of them into train entries on the
// wire queue (ep.txq).
type outMsg struct {
	frame   []byte // pooled slab; returned after the flush write
	dst     *hostAddr
	dstHost netapi.HostID // re-resolved against the registry at flush time
	frames  int           // protocol frames inside (1 for a single, n for a train)
}

// Endpoint is a UDP-backed netapi.Endpoint.
type Endpoint struct {
	p      *Provider
	host   netapi.HostID
	port   uint16
	sock   *net.UDPConn
	closed atomic.Bool

	batch      int           // batch depth (rx ring and tx flush queue)
	flushWin   time.Duration // 0 = per-packet sends
	trainBytes int           // frame-train coalescing budget (0 = off)

	// recv/recvBatch hold the receive upcalls; written by SetReceiver /
	// SetBatchReceiver (any goroutine, including the loop itself) and
	// loaded by the batch closures, which invoke them on the loop
	// goroutine only. When both are installed the batch upcall wins.
	recv      atomic.Value // of recvBox
	recvBatch atomic.Value // of batchBox

	// The send flush queue. sendMu is held across the flush write so
	// concurrent size- and window-flushes cannot reorder batches. sq
	// holds individual frames; txq is the per-flush scratch of wire
	// datagrams after train coalescing.
	sendMu     sync.Mutex
	sq         []outMsg
	txq        []outMsg
	flushTimer *time.Timer
	bio        batchIO // platform-specific batch-syscall state (batch_*.go)

	sent     atomic.Uint64 // datagrams written to the socket
	received atomic.Uint64 // datagrams read from the socket
	dropped  atomic.Uint64 // datagrams shed by the bounded loop queue
}

var (
	_ netapi.Endpoint      = (*Endpoint)(nil)
	_ netapi.BatchEndpoint = (*Endpoint)(nil)
)

// SentCount reports datagrams successfully written to the socket.
func (ep *Endpoint) SentCount() uint64 { return ep.sent.Load() }

// ReceivedCount reports datagrams read from the socket (before any queue
// shedding).
func (ep *Endpoint) ReceivedCount() uint64 { return ep.received.Load() }

// DroppedCount reports datagrams shed because the event-loop queue was full.
func (ep *Endpoint) DroppedCount() uint64 { return ep.dropped.Load() }

// Open binds a UDP socket for the host on the provider's bind address and
// starts its reader. The netapi port is carried inside each datagram header
// byte pair (hosts are distinguished by UDP port, so one OS port serves one
// host).
func (p *Provider) Open(host netapi.HostID, port uint16) (netapi.Endpoint, error) {
	if p.closed.Load() {
		return nil, errors.New("udpnet: provider closed")
	}
	ip := net.ParseIP(p.cfg.BindIP)
	if ip == nil {
		return nil, fmt.Errorf("udpnet: invalid bind IP %q", p.cfg.BindIP)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, busy := p.hosts[host]; busy {
		return nil, fmt.Errorf("udpnet: host %v already open (one endpoint per host)", host)
	}
	sock, err := net.ListenUDP("udp4", &net.UDPAddr{IP: ip, Port: 0})
	if err != nil {
		return nil, err
	}
	if p.cfg.ReadBuffer > 0 {
		if err := sock.SetReadBuffer(p.cfg.ReadBuffer); err != nil {
			sock.Close()
			return nil, fmt.Errorf("udpnet: read buffer: %w", err)
		}
	}
	if p.cfg.WriteBuffer > 0 {
		if err := sock.SetWriteBuffer(p.cfg.WriteBuffer); err != nil {
			sock.Close()
			return nil, fmt.Errorf("udpnet: write buffer: %w", err)
		}
	}
	if port == 0 {
		port = 49152
	}
	ep := &Endpoint{
		p: p, host: host, port: port, sock: sock,
		batch: p.cfg.BatchSize, flushWin: p.cfg.FlushWindow,
		trainBytes: p.cfg.TrainBytes,
		sq:         make([]outMsg, 0, p.cfg.BatchSize),
		txq:        make([]outMsg, 0, p.cfg.BatchSize),
	}
	if err := ep.bio.init(ep); err != nil {
		sock.Close()
		return nil, err
	}
	p.hosts[host] = newHostAddr(sock.LocalAddr().(*net.UDPAddr))
	p.eps[host] = ep
	p.publishLocked()
	p.readers.Add(1)
	go ep.reader()
	return ep, nil
}

// rxBatch is one posted receive batch: pooled, with its loop closure bound
// once at construction so the steady-state packet path allocates nothing.
type rxBatch struct {
	ep   *Endpoint
	pkts []netapi.Packet // Data fields are pooled slabs
	run  func()
}

var (
	rxBatchBackstop = &backstop.Stack[*rxBatch]{PerShard: 16}
	rxBatchPool     sync.Pool // New set in init (direct literal would cycle)
)

func init() {
	rxBatchPool.New = func() any {
		b := &rxBatch{}
		b.run = b.deliver
		return b
	}
}

func getRxBatch() *rxBatch {
	if b, ok := rxBatchBackstop.Get(); ok {
		return b
	}
	return rxBatchPool.Get().(*rxBatch)
}

func putRxBatch(b *rxBatch) {
	b.ep = nil
	if !rxBatchBackstop.Put(b) {
		rxBatchPool.Put(b)
	}
}

// release returns every pooled slab and the batch itself.
func (b *rxBatch) release() {
	for i := range b.pkts {
		message.PutSlab(b.pkts[i].Data)
		b.pkts[i] = netapi.Packet{}
	}
	b.pkts = b.pkts[:0]
	putRxBatch(b)
}

// deliver runs on the loop goroutine: one closure per batch, the whole
// batch through the batch upcall when one is installed, else the per-packet
// receiver per element.
func (b *rxBatch) deliver() {
	ep := b.ep
	if !ep.closed.Load() {
		if bb, _ := ep.recvBatch.Load().(batchBox); bb.fn != nil {
			bb.fn(b.pkts)
		} else if rb, _ := ep.recv.Load().(recvBox); rb.fn != nil {
			for i := range b.pkts {
				rb.fn(b.pkts[i].Data, b.pkts[i].From)
			}
		}
	}
	b.release()
}

// reader pumps datagram batches into the event loop. It owns its socket
// until the socket closes, then signals the provider's reader WaitGroup —
// Close waits on that before stopping the loop, so shutdown never strands
// an upcall.
func (ep *Endpoint) reader() {
	defer ep.p.readers.Done()
	rx := ep.bio.newRxState(ep)
	for {
		n, err := ep.readBatch(rx)
		if err != nil {
			return // socket closed
		}
		if n == 0 {
			continue
		}
		ep.dispatch(rx, n)
	}
}

// parseSrc decodes a 6-byte frame header: srcHost uint32 | srcPort uint16.
func parseSrc(hdr []byte) netapi.Addr {
	return netapi.Addr{
		Host: netapi.HostID(hdr[0])<<24 | netapi.HostID(hdr[1])<<16 | netapi.HostID(hdr[2])<<8 | netapi.HostID(hdr[3]),
		Port: uint16(hdr[4])<<8 | uint16(hdr[5]),
	}
}

// isTrain reports whether a wire datagram is a coalesced frame train.
func isTrain(buf []byte, ln int) bool {
	return ln >= trainHdr &&
		buf[0] == trainMarker && buf[1] == trainMarker &&
		buf[2] == trainMarker && buf[3] == trainMarker
}

// wireFrameCount is the number of protocol frames a wire datagram claims
// to carry (pre-copy, header-only inspection).
func wireFrameCount(buf []byte, ln int) int {
	if isTrain(buf, ln) {
		return int(buf[4])<<8 | int(buf[5])
	}
	if ln >= frameOverhead {
		return 1
	}
	return 0
}

// expandTrain copies each record of a train datagram into its own pooled
// slab and appends it to the batch. Truncated or malformed records abort
// the rest of the train (the damage cannot be re-synchronized).
func expandTrain(b *rxBatch, buf []byte, ln int) {
	cnt := int(buf[4])<<8 | int(buf[5])
	src := parseSrc(buf[6:trainHdr])
	off := trainHdr
	for k := 0; k < cnt; k++ {
		if off+trainRecHdr > ln {
			return
		}
		rl := int(buf[off])<<8 | int(buf[off+1])
		off += trainRecHdr
		if off+rl > ln {
			return
		}
		pkt := message.GetSlab(rl)
		copy(pkt, buf[off:off+rl])
		off += rl
		b.pkts = append(b.pkts, netapi.Packet{Data: pkt, From: src})
	}
}

// dispatch copies one received batch into pooled slabs — expanding frame
// trains back into individual packets — and posts a single closure for it,
// shedding (with counts, and without copying) when nobody can consume it.
func (ep *Endpoint) dispatch(rx *rxState, n int) {
	frames := 0
	for i := 0; i < n; i++ {
		frames += wireFrameCount(rx.slot(i), rx.size(i))
	}
	if frames == 0 {
		return
	}
	ep.received.Add(uint64(frames))
	ep.p.framesIn.Add(uint64(frames))
	ep.p.datagramsIn.Add(uint64(n))
	ep.p.batchesIn.Add(1)

	// Copy-avoidance checks (the authoritative drop still happens at
	// tryPost): no receiver installed, or the loop queue already full —
	// either way this batch cannot be consumed, so skip the copies.
	rb, _ := ep.recv.Load().(recvBox)
	bb, _ := ep.recvBatch.Load().(batchBox)
	if (rb.fn == nil && bb.fn == nil) || ep.closed.Load() {
		ep.p.skippedCopies.Add(uint64(frames))
		return
	}
	if ep.p.loopFull() {
		ep.p.skippedCopies.Add(uint64(frames))
		ep.dropped.Add(uint64(frames))
		return
	}

	b := getRxBatch()
	b.ep = ep
	for i := 0; i < n; i++ {
		ln := rx.size(i)
		buf := rx.slot(i)
		if isTrain(buf, ln) {
			expandTrain(b, buf, ln)
			continue
		}
		if ln < frameOverhead {
			continue
		}
		pkt := message.GetSlab(ln - frameOverhead)
		copy(pkt, buf[frameOverhead:ln])
		b.pkts = append(b.pkts, netapi.Packet{Data: pkt, From: parseSrc(buf)})
	}
	if len(b.pkts) == 0 {
		putRxBatch(b)
		return
	}
	if !ep.p.tryPost(b.run) {
		ep.dropped.Add(uint64(len(b.pkts)))
		b.release()
	}
}

// Send frames and transmits pkt toward dst. For multicast destinations the
// send fans out to every group member and keeps going past per-member
// failures: the errors are aggregated (errors.Join) and counted, so one
// dead peer cannot starve the rest of the group.
func (ep *Endpoint) Send(pkt []byte, dst netapi.Addr) error {
	if ep.closed.Load() {
		return errors.New("udpnet: endpoint closed")
	}
	reg := ep.p.reg.Load()
	if dst.Host.IsMulticast() {
		members := reg.groups[dst.Host]
		if members == nil {
			return fmt.Errorf("udpnet: unknown group %v", dst.Host)
		}
		var errs []error
		for _, m := range members {
			if m == ep.host {
				continue
			}
			if err := ep.sendTo(reg, pkt, netapi.Addr{Host: m, Port: dst.Port}); err != nil {
				ep.p.fanoutErrs.Add(1)
				errs = append(errs, fmt.Errorf("udpnet: group %v member %v: %w", dst.Host, m, err))
			}
		}
		return errors.Join(errs...)
	}
	return ep.sendTo(reg, pkt, dst)
}

func (ep *Endpoint) sendTo(reg *registry, pkt []byte, dst netapi.Addr) error {
	ha := reg.hosts[dst.Host]
	if ha == nil {
		return fmt.Errorf("udpnet: unknown host %v", dst.Host)
	}
	// Frame encode into pooled scratch: srcHost | srcPort | payload.
	frame := message.GetSlab(frameOverhead + len(pkt))
	frame[0] = byte(ep.host >> 24)
	frame[1] = byte(ep.host >> 16)
	frame[2] = byte(ep.host >> 8)
	frame[3] = byte(ep.host)
	frame[4] = byte(ep.port >> 8)
	frame[5] = byte(ep.port)
	copy(frame[frameOverhead:], pkt)

	if ep.flushWin == 0 || ep.batch <= 1 {
		// Per-packet path: one write per Send, error straight back, wire
		// format bitwise identical to the pre-batching provider.
		_, err := ep.sock.WriteToUDPAddrPort(frame, ha.ap)
		message.PutSlab(frame)
		if err == nil {
			ep.sent.Add(1)
			ep.p.datagramsOut.Add(1)
			ep.p.framesOut.Add(1)
		}
		return err
	}
	return ep.enqueue(frame, ha, dst.Host)
}

// enqueue adds a framed datagram to the flush queue, flushing when it
// reaches the batch size and arming the window timer when it goes
// non-empty.
func (ep *Endpoint) enqueue(frame []byte, dst *hostAddr, dstHost netapi.HostID) error {
	ep.sendMu.Lock()
	defer ep.sendMu.Unlock()
	if ep.closed.Load() {
		message.PutSlab(frame)
		return errors.New("udpnet: endpoint closed")
	}
	ep.sq = append(ep.sq, outMsg{frame: frame, dst: dst, dstHost: dstHost, frames: 1})
	if len(ep.sq) >= ep.batch {
		ep.p.flushesSize.Add(1)
		return ep.flushLocked()
	}
	if len(ep.sq) == 1 {
		if ep.flushTimer == nil {
			ep.flushTimer = time.AfterFunc(ep.flushWin, ep.onFlushTimer)
		} else {
			ep.flushTimer.Reset(ep.flushWin)
		}
	}
	return nil
}

// onFlushTimer drains whatever accumulated during the flush window.
func (ep *Endpoint) onFlushTimer() {
	ep.sendMu.Lock()
	defer ep.sendMu.Unlock()
	if len(ep.sq) == 0 || ep.closed.Load() {
		return
	}
	ep.p.flushesWindow.Add(1)
	if err := ep.flushLocked(); err != nil {
		ep.p.sendErrs.Add(1)
	}
}

// packTrains drains the frame queue into the wire queue, coalescing
// consecutive same-destination frames into train datagrams within the
// budget. Singles pass their slab through unchanged (and keep the
// pre-train wire format). Called with sendMu held.
func (ep *Endpoint) packTrains() {
	sq := ep.sq
	i := 0
	for i < len(sq) {
		j := i + 1
		if ep.trainBytes > 0 {
			total := trainHdr + trainRecHdr + (len(sq[i].frame) - frameOverhead)
			for j < len(sq) && j-i < maxTrainCount && sq[j].dst == sq[i].dst {
				rec := trainRecHdr + (len(sq[j].frame) - frameOverhead)
				if total+rec > ep.trainBytes {
					break
				}
				total += rec
				j++
			}
		}
		if j == i+1 {
			ep.txq = append(ep.txq, sq[i])
		} else {
			ep.txq = append(ep.txq, ep.buildTrain(sq[i:j]))
			ep.p.trainsOut.Add(1)
			ep.p.trainFrames.Add(uint64(j - i))
		}
		i = j
	}
	for k := range sq {
		sq[k] = outMsg{}
	}
	ep.sq = sq[:0]
}

// buildTrain packs a same-destination run into one train datagram and
// recycles the constituent frame slabs. The shared 6-byte source header is
// taken from the first frame (all frames from this endpoint carry the same
// one).
func (ep *Endpoint) buildTrain(run []outMsg) outMsg {
	total := trainHdr
	for k := range run {
		total += trainRecHdr + len(run[k].frame) - frameOverhead
	}
	t := message.GetSlab(total)
	t[0], t[1], t[2], t[3] = trainMarker, trainMarker, trainMarker, trainMarker
	n := len(run)
	t[4], t[5] = byte(n>>8), byte(n)
	copy(t[6:trainHdr], run[0].frame[:frameOverhead])
	off := trainHdr
	for k := range run {
		pl := run[k].frame[frameOverhead:]
		t[off] = byte(len(pl) >> 8)
		t[off+1] = byte(len(pl))
		off += trainRecHdr
		copy(t[off:], pl)
		off += len(pl)
		message.PutSlab(run[k].frame)
	}
	return outMsg{frame: t, dst: run[0].dst, frames: n}
}

// flushLocked coalesces the queued frames into wire datagrams, writes them
// with one batch syscall, and recycles the slabs. Called with sendMu held —
// the lock spans the write so batches leave the socket in enqueue order.
func (ep *Endpoint) flushLocked() error {
	if len(ep.sq) == 0 {
		return nil
	}
	// Re-resolve queued destinations against the current registry snapshot:
	// frames enqueued before a peer re-registered (restart on a new socket)
	// must flush to its new address, not the one captured at enqueue time.
	// Entries re-resolve to the snapshot's shared *hostAddr, so packTrains'
	// pointer-equality coalescing keeps working.
	reg := ep.p.reg.Load()
	for i := range ep.sq {
		if ha := reg.hosts[ep.sq[i].dstHost]; ha != nil && ha != ep.sq[i].dst {
			ep.sq[i].dst = ha
			ep.p.rehomedFrames.Add(1)
		}
	}
	ep.p.batchesOut.Add(1)
	ep.packTrains()
	wrote, err := ep.writeBatch(ep.txq)
	var frames uint64
	for i := 0; i < wrote; i++ {
		frames += uint64(ep.txq[i].frames)
	}
	ep.sent.Add(frames)
	ep.p.framesOut.Add(frames)
	ep.p.datagramsOut.Add(uint64(wrote))
	for i := range ep.txq {
		message.PutSlab(ep.txq[i].frame)
		ep.txq[i] = outMsg{}
	}
	ep.txq = ep.txq[:0]
	return err
}

// writeBatchPortable is the single-write drain shared by the fallback
// backend and the (unreachable today) non-IPv4 escape hatch: datagrams go
// out one WriteToUDPAddrPort at a time, in order.
func (ep *Endpoint) writeBatchPortable(msgs []outMsg) (int, error) {
	sent := 0
	for i := range msgs {
		if _, err := ep.sock.WriteToUDPAddrPort(msgs[i].frame, msgs[i].dst.ap); err != nil {
			return sent, err
		}
		sent++
	}
	return sent, nil
}

// Flush forces any queued frames out now (size/window semantics are
// bypassed). Useful in tests and before latency-sensitive quiesce points.
func (ep *Endpoint) Flush() error {
	ep.sendMu.Lock()
	defer ep.sendMu.Unlock()
	if ep.closed.Load() {
		return nil
	}
	return ep.flushLocked()
}

// recvBox wraps the receiver so atomic.Value can store a nil upcall.
type recvBox struct{ fn netapi.Receiver }

// batchBox wraps the batch receiver the same way.
type batchBox struct{ fn netapi.BatchReceiver }

// SetReceiver installs the per-packet receive upcall. Safe from any
// goroutine (the slot is atomic); the upcall itself always runs on the
// event loop.
func (ep *Endpoint) SetReceiver(r netapi.Receiver) {
	ep.recv.Store(recvBox{fn: r})
}

// SetBatchReceiver installs the batched receive upcall (netapi.
// BatchEndpoint). When installed it takes precedence over the per-packet
// receiver: each posted batch is delivered in a single call, with packet
// buffers valid only for its duration.
func (ep *Endpoint) SetBatchReceiver(r netapi.BatchReceiver) {
	ep.recvBatch.Store(batchBox{fn: r})
}

// LocalAddr returns the endpoint's netapi address.
func (ep *Endpoint) LocalAddr() netapi.Addr {
	return netapi.Addr{Host: ep.host, Port: ep.port}
}

// UDPAddr returns the endpoint's OS-level socket address (what a remote
// provider would RegisterHost).
func (ep *Endpoint) UDPAddr() *net.UDPAddr { return ep.sock.LocalAddr().(*net.UDPAddr) }

// PathMTU reports the loopback-safe datagram budget.
func (ep *Endpoint) PathMTU(netapi.Addr) int { return 1400 }

// Close flushes any queued sends, shuts the socket, and unregisters the
// host. Idempotent and safe from any goroutine; the reader goroutine exits
// once the socket read fails.
func (ep *Endpoint) Close() error {
	if ep.closed.Swap(true) {
		return nil
	}
	// Drain the tail of the flush queue before the socket goes away. The
	// closed flag is already set, so no new frames can enqueue behind us.
	ep.sendMu.Lock()
	if ep.flushTimer != nil {
		ep.flushTimer.Stop()
	}
	ep.flushLocked()
	ep.sendMu.Unlock()
	ep.p.mu.Lock()
	delete(ep.p.hosts, ep.host)
	delete(ep.p.eps, ep.host)
	ep.p.publishLocked()
	ep.p.mu.Unlock()
	return ep.sock.Close()
}
