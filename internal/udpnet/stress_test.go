package udpnet

import (
	"sync"
	"testing"
	"time"

	"adaptive/internal/netapi"
)

// TestStressConcurrentLifecycle hammers Send, SetReceiver, endpoint Close,
// timer churn, and provider Close from many goroutines at once. The
// pre-rewrite provider had unsynchronized Endpoint.closed/recv/counters and
// a panic-masking Post; under -race this test fails on that code and must
// pass on the current one.
func TestStressConcurrentLifecycle(t *testing.T) {
	p := New(WithQueueLen(256))
	defer p.Close()

	a, err := p.Open(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Open(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	ab := a.(*Endpoint)
	bb := b.(*Endpoint)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Receiver churn: reinstall the upcall while packets flow.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b.SetReceiver(func(pkt []byte, src netapi.Addr) {})
			if i%64 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Senders in both directions.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pkt := []byte("stress payload")
			for {
				select {
				case <-stop:
					return
				default:
				}
				a.Send(pkt, b.LocalAddr()) // errors fine once closed
				b.Send(pkt, a.LocalAddr())
			}
		}()
	}

	// Timer churn through the provider clock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tm := p.Clock().AfterFunc(time.Microsecond, func() {})
			tm.Stop()
		}
	}()

	// Counter readers race the reader goroutines.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = ab.SentCount() + bb.ReceivedCount() + bb.DroppedCount() + p.DroppedPosts()
		}
	}()

	// Concurrent endpoint closes mid-traffic.
	time.Sleep(50 * time.Millisecond)
	var cwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cwg.Add(1)
		go func() { defer cwg.Done(); a.Close() }()
	}
	cwg.Wait()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Provider close races nothing now, but must be idempotent and safe to
	// call again from multiple goroutines.
	var pwg sync.WaitGroup
	for i := 0; i < 3; i++ {
		pwg.Add(1)
		go func() { defer pwg.Done(); p.Close() }()
	}
	pwg.Wait()

	// Post after close must refuse rather than panic or deadlock.
	if p.Post(func() {}) {
		t.Fatal("Post accepted work after Close")
	}
	p.Wait(func() {}) // must return promptly
}

// TestQueueOverflowDropsNotBlocks proves the bounded loop queue sheds
// packets under overload instead of wedging the socket reader: with a
// one-slot queue jammed by a blocked closure, a burst of datagrams must
// still drain from the socket, with drops counted.
func TestQueueOverflowDropsNotBlocks(t *testing.T) {
	p := New(WithQueueLen(1))
	defer p.Close()
	a, _ := p.Open(1, 100)
	defer a.Close()
	b, _ := p.Open(2, 100)
	bb := b.(*Endpoint)
	defer b.Close()
	b.SetReceiver(func(pkt []byte, src netapi.Addr) {})

	// Jam the loop.
	release := make(chan struct{})
	p.Post(func() { <-release })

	const burst = 200
	for i := 0; i < burst; i++ {
		if err := a.Send([]byte("x"), b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	// The reader must keep draining the socket even though the loop is
	// jammed: wait until every datagram was either queued or dropped.
	deadline := time.Now().Add(5 * time.Second)
	for bb.ReceivedCount() < burst {
		if time.Now().After(deadline) {
			t.Fatalf("reader wedged: %d of %d datagrams read", bb.ReceivedCount(), burst)
		}
		time.Sleep(time.Millisecond)
	}
	if bb.DroppedCount() == 0 {
		t.Fatal("no drops counted despite a jammed one-slot queue")
	}
	close(release)
}

// TestShutdownDrainsReaders verifies Close ordering: after provider Close
// returns, no receiver upcall can fire.
func TestShutdownDrainsReaders(t *testing.T) {
	p := New()
	a, _ := p.Open(1, 100)
	b, _ := p.Open(2, 100)
	var mu sync.Mutex
	closed := false
	b.SetReceiver(func(pkt []byte, src netapi.Addr) {
		mu.Lock()
		if closed {
			mu.Unlock()
			t.Error("upcall after provider Close returned")
			return
		}
		mu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			if a.Send([]byte("y"), b.LocalAddr()) != nil {
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	p.Close()
	mu.Lock()
	closed = true
	mu.Unlock()
	<-done
}
