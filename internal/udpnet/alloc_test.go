package udpnet

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"adaptive/internal/netapi"
)

// TestBatchedPathAllocs pins the steady-state allocation budget of the full
// batched live datapath — Send (frame encode into pooled scratch, flush
// queue, sendmmsg) through the reader (recvmmsg into reused ring, pooled
// slab copy, one posted closure per batch) to the batch upcall — at under
// one allocation per packet. The budget lives on pooled slabs (message),
// the pooled rxBatch carriers (backstop-fronted), pre-bound syscall
// callbacks, and the RCU host snapshot; a regression on any of them shows
// up here long before it shows up in BenchmarkE11_Live.
func TestBatchedPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation soak")
	}
	p := New(WithBatch(32), WithFlushWindow(200*time.Microsecond),
		WithQueueLen(1<<14), WithSocketBuffers(4<<20, 4<<20))
	defer p.Close()

	a, err := p.Open(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Open(2, 20)
	if err != nil {
		t.Fatal(err)
	}
	var received atomic.Uint64
	b.(netapi.BatchEndpoint).SetBatchReceiver(func(batch []netapi.Packet) {
		received.Add(uint64(len(batch)))
	})

	const window = 2048 // cap in-flight datagrams so the loop queue never sheds
	payload := make([]byte, 512)
	dst := netapi.Addr{Host: 2, Port: 20}
	pump := func(n uint64) {
		start := received.Load()
		var sent uint64
		for sent < n {
			for sent-(received.Load()-start) >= window {
				runtime.Gosched()
			}
			if err := a.Send(payload, dst); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		deadline := time.Now().Add(10 * time.Second)
		for received.Load()-start < n {
			if time.Now().After(deadline) {
				t.Fatalf("delivered %d/%d", received.Load()-start, n)
			}
			runtime.Gosched()
		}
	}

	// Warm the pools, the flush timer, and the socket path.
	pump(4096)

	const pkts = 4096
	allocs := testing.AllocsPerRun(1, func() { pump(pkts) })
	perPkt := allocs / pkts
	t.Logf("batched live path: %.0f allocs for %d pkts = %.4f allocs/pkt", allocs, pkts, perPkt)
	if perPkt >= 1.0 {
		t.Fatalf("allocs/pkt = %.3f, want < 1.0", perPkt)
	}
}

// TestPerPacketSendAllocs pins the FlushWindow=0 send path: frame encode
// into a pooled slab plus one WriteToUDPAddrPort, which must not allocate
// per packet either (the RCU host snapshot removed the per-send lookup
// lock; WriteToUDPAddrPort removed the sockaddr conversion alloc).
func TestPerPacketSendAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation soak")
	}
	p := New(WithBatch(1), WithFlushWindow(0), WithQueueLen(1<<14),
		WithSocketBuffers(4<<20, 4<<20))
	defer p.Close()

	a, err := p.Open(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Open(2, 20); err != nil {
		t.Fatal(err)
	}
	// No receiver on host 2: the reader skips the rx copies (counted), so
	// this measures the send side in isolation.
	payload := make([]byte, 512)
	dst := netapi.Addr{Host: 2, Port: 20}
	for i := 0; i < 1024; i++ { // warm
		if err := a.Send(payload, dst); err != nil {
			t.Fatal(err)
		}
	}
	const pkts = 2048
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < pkts; i++ {
			if err := a.Send(payload, dst); err != nil {
				t.Fatal(err)
			}
		}
	})
	perPkt := allocs / pkts
	t.Logf("per-packet send path: %.0f allocs for %d pkts = %.4f allocs/pkt", allocs, pkts, perPkt)
	if perPkt >= 1.0 {
		t.Fatalf("allocs/pkt = %.3f, want < 1.0", perPkt)
	}
}
