//go:build linux && amd64

// Batch syscall backend: recvmmsg/sendmmsg through syscall.RawConn.
//
// golang.org/x/net/ipv4's ReadBatch/WriteBatch would be the stock way to
// reach these syscalls, but this module is dependency-free, so the two
// wrappers are issued directly with syscall.Syscall6 against the raw fd.
// The RawConn Read/Write callbacks integrate with the runtime poller:
// returning false on EAGAIN parks the goroutine until the socket is ready,
// exactly like the stock net.UDPConn paths, so blocking behavior and
// shutdown (Close unblocks the parked reader) are unchanged.
//
// The callbacks are bound once per rx/tx state object and communicate
// through fields rather than captured locals — a closure capturing locals
// would allocate per syscall and show up in the allocs/pkt budget.
//
// Scope: linux/amd64 only (syscall numbers and the Msghdr layout are
// arch-specific; SYS_SENDMMSG is not in the stdlib syscall table and is
// defined here). Other platforms fall back to batch_fallback.go.
package udpnet

import (
	"runtime"
	"syscall"
	"unsafe"
)

// sysSENDMMSG is the linux/amd64 sendmmsg(2) syscall number (the stdlib
// syscall package predates the syscall and never added it; SYS_RECVMMSG it
// does have).
const sysSENDMMSG uintptr = 307

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-written
// per-message byte count. On amd64 the struct is padded to 8-byte
// alignment.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
	_      [4]byte
}

// batchIO is the per-endpoint batch-syscall state.
type batchIO struct {
	rc syscall.RawConn
	tx *txState
}

func (b *batchIO) init(ep *Endpoint) error {
	rc, err := ep.sock.SyscallConn()
	if err != nil {
		return err
	}
	b.rc = rc
	b.tx = newTxState(ep.batch)
	return nil
}

// rxState is the reader's reusable recvmmsg scatter set: batch buffers of
// maxPacket bytes over one contiguous backing slab, with the iovec and
// mmsghdr arrays pre-wired so the steady-state read is zero-setup.
type rxState struct {
	bufs   [][]byte
	iov    []syscall.Iovec
	hdrs   []mmsghdr
	n      int
	operr  error
	readFn func(fd uintptr) bool
}

func (b *batchIO) newRxState(ep *Endpoint) *rxState {
	n := ep.batch
	rx := &rxState{
		bufs: make([][]byte, n),
		iov:  make([]syscall.Iovec, n),
		hdrs: make([]mmsghdr, n),
	}
	backing := make([]byte, n*maxPacket)
	for i := range rx.bufs {
		rx.bufs[i] = backing[i*maxPacket : (i+1)*maxPacket]
		rx.iov[i] = syscall.Iovec{Base: &rx.bufs[i][0], Len: maxPacket}
		rx.hdrs[i].hdr.Iov = &rx.iov[i]
		rx.hdrs[i].hdr.Iovlen = 1
	}
	rx.readFn = rx.doRead
	return rx
}

func (rx *rxState) slot(i int) []byte { return rx.bufs[i] }
func (rx *rxState) size(i int) int    { return int(rx.hdrs[i].msgLen) }

// readBatch reads up to len(rx.hdrs) datagrams with one recvmmsg, parking
// on the runtime poller while the socket is empty. It returns the number
// of datagrams filled, or the socket error once the endpoint closes.
func (ep *Endpoint) readBatch(rx *rxState) (int, error) {
	rx.n, rx.operr = 0, nil
	if err := ep.bio.rc.Read(rx.readFn); err != nil {
		return 0, err
	}
	return rx.n, rx.operr
}

func (rx *rxState) doRead(fd uintptr) bool {
	for {
		r1, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&rx.hdrs[0])), uintptr(len(rx.hdrs)), 0, 0, 0)
		switch errno {
		case 0:
			rx.n = int(r1)
			return true
		case syscall.EINTR:
			// retry
		case syscall.EAGAIN:
			return false // park on the poller
		default:
			rx.operr = errno
			return true
		}
	}
}

// txState is the flush path's reusable sendmmsg gather set. It is only
// touched under the endpoint's sendMu (flushes are serialized), so one set
// per endpoint suffices.
type txState struct {
	iov   []syscall.Iovec
	hdrs  []mmsghdr
	names []syscall.RawSockaddrInet4
	pos   int // messages accepted by the kernel so far
	cnt   int // messages loaded into the arrays
	operr error
	wrFn  func(fd uintptr) bool
}

func newTxState(n int) *txState {
	tx := &txState{
		iov:   make([]syscall.Iovec, n),
		hdrs:  make([]mmsghdr, n),
		names: make([]syscall.RawSockaddrInet4, n),
	}
	tx.wrFn = tx.doWrite
	return tx
}

// writeBatch transmits the queued frames with as few sendmmsg calls as
// possible, preserving order. Called under sendMu.
func (ep *Endpoint) writeBatch(msgs []outMsg) (int, error) {
	for i := range msgs {
		if !msgs[i].dst.v4 {
			// Sockets and registrations are udp4-only, so this cannot
			// happen today; degrade to single writes rather than crash
			// if that ever changes.
			return ep.writeBatchPortable(msgs)
		}
	}
	tx := ep.bio.tx
	sent := 0
	for sent < len(msgs) {
		k := len(msgs) - sent
		if k > len(tx.hdrs) {
			k = len(tx.hdrs)
		}
		n, err := ep.sendmmsg(tx, msgs[sent:sent+k])
		sent += n
		if err != nil {
			return sent, err
		}
	}
	return sent, nil
}

func (ep *Endpoint) sendmmsg(tx *txState, msgs []outMsg) (int, error) {
	for i := range msgs {
		m := &msgs[i]
		tx.iov[i] = syscall.Iovec{Base: &m.frame[0], Len: uint64(len(m.frame))}
		na := &tx.names[i]
		*na = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: m.dst.ip4}
		// sin_port is stored in network byte order.
		p := (*[2]byte)(unsafe.Pointer(&na.Port))
		p[0] = byte(m.dst.prt >> 8)
		p[1] = byte(m.dst.prt)
		h := &tx.hdrs[i]
		h.hdr.Name = (*byte)(unsafe.Pointer(na))
		h.hdr.Namelen = syscall.SizeofSockaddrInet4
		h.hdr.Iov = &tx.iov[i]
		h.hdr.Iovlen = 1
		h.msgLen = 0
	}
	tx.pos, tx.cnt, tx.operr = 0, len(msgs), nil
	err := ep.bio.rc.Write(tx.wrFn)
	// The frame and sockaddr memory is referenced from the mmsghdr arrays
	// only as raw pointers; keep the Go-visible references alive across
	// the syscalls.
	runtime.KeepAlive(msgs)
	runtime.KeepAlive(tx)
	if err != nil {
		return tx.pos, err
	}
	return tx.pos, tx.operr
}

func (tx *txState) doWrite(fd uintptr) bool {
	for tx.pos < tx.cnt {
		r1, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&tx.hdrs[tx.pos])), uintptr(tx.cnt-tx.pos), 0, 0, 0)
		switch errno {
		case 0:
			tx.pos += int(r1)
		case syscall.EINTR:
			// retry
		case syscall.EAGAIN:
			return false // park until the socket drains
		default:
			tx.operr = errno
			return true
		}
	}
	return true
}
