package mechanism

import (
	"fmt"
	"time"

	"adaptive/internal/wire"
)

// ConnKind names a connection-management mechanism.
type ConnKind uint8

const (
	ConnImplicit     ConnKind = iota // config piggybacked on first data PDU
	ConnExplicit2Way                 // request/accept handshake
	ConnExplicit3Way                 // request/accept/confirm handshake
)

func (c ConnKind) String() string {
	switch c {
	case ConnImplicit:
		return "implicit"
	case ConnExplicit2Way:
		return "explicit-2way"
	case ConnExplicit3Way:
		return "explicit-3way"
	}
	return fmt.Sprintf("conn(%d)", uint8(c))
}

// RecoveryKind names an error-recovery mechanism.
type RecoveryKind uint8

const (
	RecoveryNone            RecoveryKind = iota // fire-and-forget
	RecoveryGoBackN                             // cumulative ack, retransmit from SndUna
	RecoverySelectiveRepeat                     // receiver buffers, NAK-driven resend
	RecoveryFEC                                 // XOR parity groups, loss-tolerant
	RecoveryFECHybrid                           // FEC first, NAK fallback (reliable)
)

func (r RecoveryKind) String() string {
	switch r {
	case RecoveryNone:
		return "none"
	case RecoveryGoBackN:
		return "go-back-n"
	case RecoverySelectiveRepeat:
		return "selective-repeat"
	case RecoveryFEC:
		return "fec"
	case RecoveryFECHybrid:
		return "fec-hybrid"
	}
	return fmt.Sprintf("recovery(%d)", uint8(r))
}

// WindowKind names a transmission-window mechanism.
type WindowKind uint8

const (
	WindowFixed       WindowKind = iota // static sliding window
	WindowStopAndWait                   // window of one
	WindowAdaptive                      // slow-start / AIMD congestion window
)

func (w WindowKind) String() string {
	switch w {
	case WindowFixed:
		return "fixed-window"
	case WindowStopAndWait:
		return "stop-and-wait"
	case WindowAdaptive:
		return "adaptive-window"
	}
	return fmt.Sprintf("window(%d)", uint8(w))
}

// OrderKind names a sequencing mechanism.
type OrderKind uint8

const (
	OrderNone      OrderKind = iota // deliver as released (dup-filtered)
	OrderSequenced                  // strict in-order delivery
)

func (o OrderKind) String() string {
	switch o {
	case OrderNone:
		return "unordered"
	case OrderSequenced:
		return "sequenced"
	}
	return fmt.Sprintf("order(%d)", uint8(o))
}

// Spec is the Session Configuration Specification (SCS) — the "blueprint"
// Stage II of the MANTTS transformation produces (Figure 2) and the TKO
// synthesizer consumes in Stage III. It names one concrete mechanism per
// abstract slot plus the parameters the peers negotiate (§4.1.1 lists the
// negotiated categories: parameters, mechanisms, representations).
type Spec struct {
	ConnMgmt ConnKind
	Recovery RecoveryKind
	Window   WindowKind
	Order    OrderKind
	Checksum wire.ChecksumKind

	WindowSize int     // PDUs, for fixed windows; initial cwnd for adaptive
	FECGroup   int     // data PDUs per parity block
	RateBps    float64 // pacing rate; 0 = unpaced
	MSS        int     // max segment size (payload bytes per data PDU)
	RcvBufPDUs int     // receiver buffer capacity

	RTOInit time.Duration
	RTOMin  time.Duration
	RTOMax  time.Duration

	// AckDelay enables delayed acknowledgments: the receiver coalesces
	// cumulative acks for up to this long (or every second in-order data
	// PDU, whichever first). Zero acks immediately. One of the negotiated
	// "timer settings for delayed acknowledgments" of §4.1.1.
	AckDelay time.Duration

	// GapDeadline bounds how long a loss-tolerant receiver waits for a
	// missing PDU before abandoning the gap (isochronous delivery).
	GapDeadline time.Duration

	// EstablishTimeout bounds the active-open handshake: retries back off
	// exponentially from RTOInit, and the attempt fails once this much time
	// has passed. Zero keeps only the retry-count bound.
	EstablishTimeout time.Duration

	// KeepaliveInterval enables dead-peer detection: an idle established
	// session probes the peer this often, and declares it dead (NotePeerDead,
	// abortive close) after DeadInterval without hearing anything. Zero
	// disables keepalives entirely.
	KeepaliveInterval time.Duration
	DeadInterval      time.Duration

	Graceful     bool // drain send queue before close
	LossTolerant bool // application accepts gaps
	Multicast    bool // session addresses a group
	Priority     int  // scheduling priority (0 = normal)
}

// DefaultSpec returns a reasonable reliable unicast configuration.
func DefaultSpec() Spec {
	return Spec{
		ConnMgmt:   ConnExplicit2Way,
		Recovery:   RecoverySelectiveRepeat,
		Window:     WindowFixed,
		Order:      OrderSequenced,
		Checksum:   wire.CkCRC32,
		WindowSize: 32,
		FECGroup:   8,
		MSS:        1400,
		RcvBufPDUs: 256,
		RTOInit:    200 * time.Millisecond,
		RTOMin:     10 * time.Millisecond,
		RTOMax:     10 * time.Second,
		Graceful:   true,
	}
}

// Normalize fills zero-valued parameters with defaults so a Spec built field
// by field (or decoded from an older peer) is always runnable.
func (s *Spec) Normalize() {
	d := DefaultSpec()
	if s.WindowSize <= 0 {
		s.WindowSize = d.WindowSize
	}
	if s.FECGroup <= 0 {
		s.FECGroup = d.FECGroup
	}
	if s.FECGroup > 64 {
		s.FECGroup = 64 // receiver group bitmaps are 64-wide
	}
	if s.MSS <= 0 {
		s.MSS = d.MSS
	}
	if s.RcvBufPDUs <= 0 {
		s.RcvBufPDUs = d.RcvBufPDUs
	}
	if s.RTOInit <= 0 {
		s.RTOInit = d.RTOInit
	}
	if s.RTOMin <= 0 {
		s.RTOMin = d.RTOMin
	}
	if s.RTOMax <= 0 {
		s.RTOMax = d.RTOMax
	}
	if s.GapDeadline <= 0 {
		s.GapDeadline = 50 * time.Millisecond
	}
	// A keepalive without a dead interval defaults to the conventional three
	// missed probes; a dead interval shorter than one probe period could
	// never observe a reply in time.
	if s.KeepaliveInterval > 0 {
		if s.DeadInterval <= 0 {
			s.DeadInterval = 3 * s.KeepaliveInterval
		}
		if s.DeadInterval < s.KeepaliveInterval {
			s.DeadInterval = s.KeepaliveInterval
		}
	}
	// Delayed acks must stay well under the sender's RTO floor or every
	// window stalls into a spurious retransmission; and a window of one
	// (stop-and-wait) would serialize on the delay.
	if s.AckDelay > 0 {
		if s.WindowSize <= 2 {
			s.AckDelay = 0
		} else if s.AckDelay > s.RTOMin/2 {
			s.AckDelay = s.RTOMin / 2
		}
	}
}

// String renders the Spec compactly for logs and EXPERIMENTS.md rows.
func (s Spec) String() string {
	return fmt.Sprintf("{conn=%v recovery=%v window=%v(%d) order=%v ck=%v mss=%d rate=%.0f fec=%d}",
		s.ConnMgmt, s.Recovery, s.Window, s.WindowSize, s.Order, s.Checksum, s.MSS, s.RateBps, s.FECGroup)
}

// TLV tags for Spec encoding (negotiation payloads and implicit-connection
// piggyback blobs). Tags are stable wire artifacts: never renumber.
const (
	tagConnMgmt   uint16 = 1
	tagRecovery   uint16 = 2
	tagWindowKind uint16 = 3
	tagOrder      uint16 = 4
	tagChecksum   uint16 = 5
	tagWindowSize uint16 = 6
	tagFECGroup   uint16 = 7
	tagRateBps    uint16 = 8
	tagMSS        uint16 = 9
	tagRcvBuf     uint16 = 10
	tagRTOInit    uint16 = 11
	tagRTOMin     uint16 = 12
	tagRTOMax     uint16 = 13
	tagGapDead    uint16 = 14
	tagBoolFlags  uint16 = 15
	tagPriority   uint16 = 16
	tagAckDelay   uint16 = 17
	tagEstTimeout uint16 = 18
	tagKeepalive  uint16 = 19
	tagDeadIntvl  uint16 = 20
)

const (
	specFlagGraceful     = 1 << 0
	specFlagLossTolerant = 1 << 1
	specFlagMulticast    = 1 << 2
)

// EncodeSpec serializes a Spec as TLV.
func EncodeSpec(s *Spec) []byte {
	var w wire.TLVWriter
	w.Grow(224) // fixed field set; one slab covers the whole encoding
	w.PutU8(tagConnMgmt, uint8(s.ConnMgmt))
	w.PutU8(tagRecovery, uint8(s.Recovery))
	w.PutU8(tagWindowKind, uint8(s.Window))
	w.PutU8(tagOrder, uint8(s.Order))
	w.PutU8(tagChecksum, uint8(s.Checksum))
	w.PutU32(tagWindowSize, uint32(s.WindowSize))
	w.PutU32(tagFECGroup, uint32(s.FECGroup))
	w.PutU64(tagRateBps, uint64(s.RateBps))
	w.PutU32(tagMSS, uint32(s.MSS))
	w.PutU32(tagRcvBuf, uint32(s.RcvBufPDUs))
	w.PutU64(tagRTOInit, uint64(s.RTOInit))
	w.PutU64(tagRTOMin, uint64(s.RTOMin))
	w.PutU64(tagRTOMax, uint64(s.RTOMax))
	w.PutU64(tagGapDead, uint64(s.GapDeadline))
	var flags uint8
	if s.Graceful {
		flags |= specFlagGraceful
	}
	if s.LossTolerant {
		flags |= specFlagLossTolerant
	}
	if s.Multicast {
		flags |= specFlagMulticast
	}
	w.PutU8(tagBoolFlags, flags)
	w.PutU32(tagPriority, uint32(s.Priority))
	w.PutU64(tagAckDelay, uint64(s.AckDelay))
	w.PutU64(tagEstTimeout, uint64(s.EstablishTimeout))
	w.PutU64(tagKeepalive, uint64(s.KeepaliveInterval))
	w.PutU64(tagDeadIntvl, uint64(s.DeadInterval))
	return w.Bytes()
}

// DecodeSpec parses a TLV-encoded Spec, tolerating unknown tags.
func DecodeSpec(b []byte) (*Spec, error) {
	s := &Spec{}
	r := wire.NewTLVReader(b)
	for {
		tag, val, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		switch tag {
		case tagConnMgmt:
			s.ConnMgmt = ConnKind(wire.U8(val))
		case tagRecovery:
			s.Recovery = RecoveryKind(wire.U8(val))
		case tagWindowKind:
			s.Window = WindowKind(wire.U8(val))
		case tagOrder:
			s.Order = OrderKind(wire.U8(val))
		case tagChecksum:
			s.Checksum = wire.ChecksumKind(wire.U8(val))
		case tagWindowSize:
			s.WindowSize = int(wire.U32(val))
		case tagFECGroup:
			s.FECGroup = int(wire.U32(val))
		case tagRateBps:
			s.RateBps = float64(wire.U64(val))
		case tagMSS:
			s.MSS = int(wire.U32(val))
		case tagRcvBuf:
			s.RcvBufPDUs = int(wire.U32(val))
		case tagRTOInit:
			s.RTOInit = time.Duration(wire.U64(val))
		case tagRTOMin:
			s.RTOMin = time.Duration(wire.U64(val))
		case tagRTOMax:
			s.RTOMax = time.Duration(wire.U64(val))
		case tagGapDead:
			s.GapDeadline = time.Duration(wire.U64(val))
		case tagBoolFlags:
			f := wire.U8(val)
			s.Graceful = f&specFlagGraceful != 0
			s.LossTolerant = f&specFlagLossTolerant != 0
			s.Multicast = f&specFlagMulticast != 0
		case tagPriority:
			s.Priority = int(wire.U32(val))
		case tagAckDelay:
			s.AckDelay = time.Duration(wire.U64(val))
		case tagEstTimeout:
			s.EstablishTimeout = time.Duration(wire.U64(val))
		case tagKeepalive:
			s.KeepaliveInterval = time.Duration(wire.U64(val))
		case tagDeadIntvl:
			s.DeadInterval = time.Duration(wire.U64(val))
		}
	}
	s.Normalize()
	return s, nil
}
