// Package mechtest provides a fake mechanism.Env for unit-testing protocol
// mechanisms in isolation from the session and network.
package mechtest

import (
	"math/rand"
	"time"

	"adaptive/internal/event"
	"adaptive/internal/mechanism"
	"adaptive/internal/message"
	"adaptive/internal/netapi"
	"adaptive/internal/netsim"
	"adaptive/internal/sim"
	"adaptive/internal/trace"
	"adaptive/internal/wire"
)

// Env is a recording fake for mechanism.Env backed by a real simulation
// kernel (so timers behave) and an in-memory event log.
type Env struct {
	Kernel  *sim.Kernel
	TimerMg *event.Manager
	Rng     *rand.Rand
	SpecV   *mechanism.Spec
	StateV  *mechanism.TransferState

	Control      []*wire.PDU // EmitControl log (headers + payload copies)
	Data         []*wire.PDU // EmitData log
	Released     []mechanism.Delivery
	Notes        []mechanism.Notification
	Pumps        int
	Skips        []uint32
	WindowLosses int
	Applied      []*mechanism.Spec
	Sink         *CountSink
}

// CountSink is a counting MetricSink.
type CountSink struct {
	Counts  map[string]uint64
	Samples map[string][]float64
}

func (c *CountSink) Count(name string, d uint64)   { c.Counts[name] += d }
func (c *CountSink) Sample(name string, v float64) { c.Samples[name] = append(c.Samples[name], v) }
func (c *CountSink) Gauge(string, float64)         {}

// New builds a fake env with the given spec (nil = DefaultSpec).
func New(spec *mechanism.Spec) *Env {
	if spec == nil {
		d := mechanism.DefaultSpec()
		spec = &d
	}
	spec.Normalize()
	k := sim.NewKernel(1)
	net := netsim.New(k)
	return &Env{
		Kernel:  k,
		TimerMg: event.NewManager(net.Clock()),
		Rng:     rand.New(rand.NewSource(1)),
		SpecV:   spec,
		StateV:  mechanism.NewTransferState(spec.RcvBufPDUs, spec.RTOInit),
		Sink:    &CountSink{Counts: map[string]uint64{}, Samples: map[string][]float64{}},
	}
}

var _ mechanism.Env = (*Env)(nil)

func (e *Env) Clock() netapi.Clock             { return e.TimerMg.Clock() }
func (e *Env) Timers() *event.Manager          { return e.TimerMg }
func (e *Env) Rand() *rand.Rand                { return e.Rng }
func (e *Env) Metrics() mechanism.MetricSink   { return e.Sink }
func (e *Env) Tracer() *trace.Recorder         { return nil }
func (e *Env) ConnID() uint32                  { return 0xc0ffee }
func (e *Env) LocalPort() uint16               { return 1 }
func (e *Env) PeerAddr() netapi.Addr           { return netapi.Addr{Host: 2, Port: 7700} }
func (e *Env) State() *mechanism.TransferState { return e.StateV }
func (e *Env) Spec() *mechanism.Spec           { return e.SpecV }
func (e *Env) Pump()                           { e.Pumps++ }
func (e *Env) WindowOnLoss()                   { e.WindowLosses++ }
func (e *Env) SkipTo(seq uint32)               { e.Skips = append(e.Skips, seq) }
func (e *Env) ApplySpec(s *mechanism.Spec)     { e.Applied = append(e.Applied, s) }

func (e *Env) Notify(n mechanism.Notification) { e.Notes = append(e.Notes, n) }

func (e *Env) EmitControl(p *wire.PDU) { e.Control = append(e.Control, snapshot(p)) }
func (e *Env) EmitData(p *wire.PDU)    { e.Data = append(e.Data, snapshot(p)) }

func (e *Env) ReleaseData(seq uint32, m *message.Message, eom bool) {
	e.Released = append(e.Released, mechanism.Delivery{Seq: seq, Msg: m, EOM: eom})
}

// snapshot copies a PDU so the log survives payload releases.
func snapshot(p *wire.PDU) *wire.PDU {
	cp := &wire.PDU{Header: p.Header}
	if p.Payload != nil {
		cp.Payload = message.NewFromBytes(p.Payload.Bytes())
	}
	return cp
}

// LastControl returns the most recent control PDU of the given type, or nil.
func (e *Env) LastControl(t wire.Type) *wire.PDU {
	for i := len(e.Control) - 1; i >= 0; i-- {
		if e.Control[i].Type == t {
			return e.Control[i]
		}
	}
	return nil
}

// ControlCount counts control PDUs of a type.
func (e *Env) ControlCount(t wire.Type) int {
	n := 0
	for _, p := range e.Control {
		if p.Type == t {
			n++
		}
	}
	return n
}

// DataPDU builds a data PDU with the given seq and payload.
func DataPDU(seq uint32, payload string) *wire.PDU {
	return &wire.PDU{
		Header:  wire.Header{Type: wire.TData, Seq: seq},
		Payload: message.NewFromBytes([]byte(payload)),
	}
}

// SentEntry installs a retransmission-buffer entry (sender-side test setup).
func (e *Env) SentEntry(seq uint32, payload string, at time.Duration) {
	p := DataPDU(seq, payload)
	e.StateV.Unacked[seq] = &mechanism.SentPDU{PDU: p, SentAt: at}
	if e.StateV.SndNxt <= seq {
		e.StateV.SndNxt = seq + 1
	}
}

// ReleasedPayloads renders the released deliveries as strings in order.
func (e *Env) ReleasedPayloads() []string {
	out := make([]string, len(e.Released))
	for i, d := range e.Released {
		out[i] = string(d.Msg.Bytes())
	}
	return out
}
