package mechanism

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"adaptive/internal/wire"
)

func TestSpecCodecRoundTrip(t *testing.T) {
	s := DefaultSpec()
	s.ConnMgmt = ConnExplicit3Way
	s.Recovery = RecoveryFECHybrid
	s.Window = WindowAdaptive
	s.Order = OrderNone
	s.Checksum = wire.CkInternet
	s.WindowSize = 77
	s.FECGroup = 12
	s.RateBps = 3e6
	s.MSS = 999
	s.RcvBufPDUs = 55
	s.RTOInit = 123 * time.Millisecond
	s.RTOMin = 7 * time.Millisecond
	s.RTOMax = 9 * time.Second
	s.GapDeadline = 33 * time.Millisecond
	s.AckDelay = 3 * time.Millisecond
	s.Graceful = true
	s.LossTolerant = true
	s.Multicast = true
	s.Priority = 4
	s.Normalize()

	got, err := DecodeSpec(EncodeSpec(&s))
	if err != nil {
		t.Fatal(err)
	}
	if *got != s {
		t.Fatalf("round trip:\n got %+v\nwant %+v", *got, s)
	}
}

func TestSpecEncodingCanonical(t *testing.T) {
	// Negotiation relies on byte-equality to detect "peer adjusted my
	// proposal": encode(decode(encode(s))) must equal encode(s).
	s := DefaultSpec()
	s.Normalize()
	e1 := EncodeSpec(&s)
	d, err := DecodeSpec(e1)
	if err != nil {
		t.Fatal(err)
	}
	e2 := EncodeSpec(d)
	if !bytes.Equal(e1, e2) {
		t.Fatal("spec encoding not canonical")
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(win, fec, mss, rcv int32, ackMs int16) bool {
		s := Spec{
			WindowSize: int(win % 2000), FECGroup: int(fec % 100),
			MSS: int(mss % 3000), RcvBufPDUs: int(rcv % 1000),
			AckDelay: time.Duration(ackMs) * time.Millisecond,
		}
		s.Normalize()
		before := s
		s.Normalize()
		return s == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeInvariants(t *testing.T) {
	var s Spec
	s.FECGroup = 1000
	s.AckDelay = time.Hour
	s.WindowSize = 8
	s.Normalize()
	if s.FECGroup > 64 {
		t.Fatalf("FEC group %d exceeds bitmap width", s.FECGroup)
	}
	if s.AckDelay > s.RTOMin/2 {
		t.Fatalf("ack delay %v above RTO floor %v", s.AckDelay, s.RTOMin)
	}
	if s.WindowSize <= 0 || s.MSS <= 0 || s.RcvBufPDUs <= 0 {
		t.Fatalf("zero-valued parameters survived: %+v", s)
	}
}

func TestNormalizeDisablesAckDelayForTinyWindows(t *testing.T) {
	var s Spec
	s.WindowSize = 1
	s.AckDelay = 5 * time.Millisecond
	s.Normalize()
	if s.AckDelay != 0 {
		t.Fatal("stop-and-wait kept a delayed ack (would serialize on it)")
	}
}

func TestSpecDecodeSkipsUnknownTags(t *testing.T) {
	s := DefaultSpec()
	enc := EncodeSpec(&s)
	var w wire.TLVWriter
	w.PutU64(9999, 42) // future field
	enc = append(enc, w.Bytes()...)
	got, err := DecodeSpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Recovery != s.Recovery {
		t.Fatal("known fields lost around unknown tag")
	}
}

func TestKindStrings(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{ConnImplicit.String(), "implicit"},
		{ConnExplicit3Way.String(), "explicit-3way"},
		{RecoverySelectiveRepeat.String(), "selective-repeat"},
		{RecoveryFECHybrid.String(), "fec-hybrid"},
		{WindowStopAndWait.String(), "stop-and-wait"},
		{OrderSequenced.String(), "sequenced"},
	} {
		if tc.got != tc.want {
			t.Fatalf("%q != %q", tc.got, tc.want)
		}
	}
	if ConnKind(99).String() == "" || RecoveryKind(99).String() == "" {
		t.Fatal("unknown kinds must still print")
	}
}
