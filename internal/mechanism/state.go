package mechanism

import (
	"time"

	"adaptive/internal/wire"
)

// SentPDU is a retransmission-buffer entry.
type SentPDU struct {
	PDU         *wire.PDU
	SentAt      time.Duration
	Retransmits int
}

// RecvPDU is an out-of-order reassembly entry.
type RecvPDU struct {
	PDU       *wire.PDU
	ArrivedAt time.Duration
	Recovered bool // reconstructed by FEC rather than received
}

// TransferState is the session context that must survive mechanism
// replacement: the paper's MSP-inspired requirement that a retransmission
// scheme can switch from go-back-n to selective repeat "within an active
// connection without loss of data" (§2.3) is met by keeping sequence state
// and both buffers here, outside any individual mechanism.
type TransferState struct {
	// Sender.
	SndUna  uint32              // oldest unacknowledged sequence
	SndNxt  uint32              // next sequence to assign
	Unacked map[uint32]*SentPDU // in-flight data, nil values never stored
	DupAcks int

	// Receiver.
	RcvNxt    uint32              // next expected in-order sequence
	RcvBuf    map[uint32]*RecvPDU // buffered out-of-order data
	RcvBufCap int                 // advertised-buffer capacity in PDUs

	// Round-trip estimation (Jacobson/Karels, with Karn's rule applied by
	// callers: retransmitted PDUs are never timed).
	SRTT   time.Duration
	RTTVar time.Duration
	RTO    time.Duration
	// LastRTT is the most recent raw sample, unsmoothed. Congestion
	// detectors that compare against a minimum baseline read this one: the
	// SRTT EWMA keeps reporting an inflated value for seconds after a queue
	// drains, which latches delay-based detectors into a decrease spiral.
	LastRTT time.Duration

	// Counters strategies share.
	Retransmissions uint64
	FECRecovered    uint64
	GapsAbandoned   uint64

	// CtrlScratch is a reusable header-only control PDU for ack emission.
	// Its contents are valid only for the duration of one EmitControl call
	// (EncodeTo copies the header into locals before emitting), so every
	// user must fully re-initialize it. It lives here, not on the stack at
	// the call site, because EmitControl is an interface call: a stack PDU
	// would escape and allocate per ack.
	CtrlScratch wire.PDU

	// Free lists for retransmission/reassembly entries. Sessions are
	// single-threaded per kernel, so plain slices suffice. Bounded so a
	// burst cannot pin memory forever.
	sentFree     []*SentPDU
	recvFree     []*RecvPDU
	drainScratch []*RecvPDU
}

// freeListCap bounds the per-state entry free lists.
const freeListCap = 512

// entryBlock is the free-list growth granule for SentPDU/RecvPDU entries.
const entryBlock = 16

// NewTransferState returns ready-to-use state.
func NewTransferState(rcvBufCap int, rtoInit time.Duration) *TransferState {
	if rcvBufCap <= 0 {
		rcvBufCap = 256
	}
	if rtoInit <= 0 {
		rtoInit = 200 * time.Millisecond
	}
	return &TransferState{
		Unacked:   make(map[uint32]*SentPDU),
		RcvBuf:    make(map[uint32]*RecvPDU),
		RcvBufCap: rcvBufCap,
		RTO:       rtoInit,
	}
}

// NewSent returns a retransmission-buffer entry from the state's free list,
// initialized to hold p.
func (s *TransferState) NewSent(p *wire.PDU, at time.Duration) *SentPDU {
	if n := len(s.sentFree); n > 0 {
		e := s.sentFree[n-1]
		s.sentFree = s.sentFree[:n-1]
		*e = SentPDU{PDU: p, SentAt: at}
		return e
	}
	// Warm the free list a block at a time: one allocation per entryBlock
	// entries while the window grows to its steady-state depth.
	blk := make([]SentPDU, entryBlock)
	for i := 1; i < len(blk); i++ {
		s.sentFree = append(s.sentFree, &blk[i])
	}
	blk[0] = SentPDU{PDU: p, SentAt: at}
	return &blk[0]
}

// FreeSent recycles an entry removed from Unacked, returning its PDU (payload
// included) to the wire pool. The caller must not touch e or e.PDU afterwards.
func (s *TransferState) FreeSent(e *SentPDU) {
	wire.PutPDU(e.PDU)
	e.PDU = nil
	if len(s.sentFree) < freeListCap {
		s.sentFree = append(s.sentFree, e)
	}
}

// NewRecv returns a reassembly entry from the state's free list.
func (s *TransferState) NewRecv(p *wire.PDU, at time.Duration, recovered bool) *RecvPDU {
	if n := len(s.recvFree); n > 0 {
		e := s.recvFree[n-1]
		s.recvFree = s.recvFree[:n-1]
		*e = RecvPDU{PDU: p, ArrivedAt: at, Recovered: recovered}
		return e
	}
	blk := make([]RecvPDU, entryBlock)
	for i := 1; i < len(blk); i++ {
		s.recvFree = append(s.recvFree, &blk[i])
	}
	blk[0] = RecvPDU{PDU: p, ArrivedAt: at, Recovered: recovered}
	return &blk[0]
}

// FreeRecv recycles a reassembly entry after delivery, returning its PDU to
// the wire pool (the payload must already have been handed off or released).
func (s *TransferState) FreeRecv(e *RecvPDU) {
	wire.PutPDU(e.PDU)
	e.PDU = nil
	if len(s.recvFree) < freeListCap {
		s.recvFree = append(s.recvFree, e)
	}
}

// InFlight returns the number of unacknowledged data PDUs.
func (s *TransferState) InFlight() int { return len(s.Unacked) }

// Advertise returns the receive-window advertisement in PDUs.
func (s *TransferState) Advertise() uint16 {
	free := s.RcvBufCap - len(s.RcvBuf)
	if free < 0 {
		free = 0
	}
	if free > 0xffff {
		free = 0xffff
	}
	return uint16(free)
}

// ObserveRTT folds a fresh round-trip sample into SRTT/RTTVar/RTO.
func (s *TransferState) ObserveRTT(sample, rtoMin, rtoMax time.Duration) {
	s.LastRTT = sample
	if s.SRTT == 0 {
		s.SRTT = sample
		s.RTTVar = sample / 2
	} else {
		diff := sample - s.SRTT
		if diff < 0 {
			diff = -diff
		}
		s.RTTVar += (diff - s.RTTVar) / 4
		s.SRTT += (sample - s.SRTT) / 8
	}
	// RFC 6298 shape: the variance term carries a granularity guard so the
	// timeout never converges to exactly SRTT when identical samples decay
	// RTTVar to zero (any jitter would then fire a spurious retransmit).
	varTerm := 4 * s.RTTVar
	if varTerm < time.Millisecond {
		varTerm = time.Millisecond
	}
	rto := s.SRTT + varTerm
	if rto < rtoMin {
		rto = rtoMin
	}
	if rtoMax > 0 && rto > rtoMax {
		rto = rtoMax
	}
	s.RTO = rto
}

// BackoffRTO doubles the retransmission timeout (exponential backoff) up to
// max.
func (s *TransferState) BackoffRTO(max time.Duration) {
	s.RTO *= 2
	if max > 0 && s.RTO > max {
		s.RTO = max
	}
}

// AckThrough removes all entries with seq < ack from the retransmission
// buffer and advances SndUna. It returns the number of PDUs acknowledged and
// the send timestamp of the newest acked, untimed==false entry (for RTT
// sampling); ok is false when no timeable sample exists.
func (s *TransferState) AckThrough(ack uint32) (acked int, sentAt time.Duration, ok bool) {
	if ack <= s.SndUna {
		return 0, 0, false
	}
	for seq := s.SndUna; seq < ack; seq++ {
		if e, present := s.Unacked[seq]; present {
			acked++
			if e.Retransmits == 0 { // Karn's rule
				if !ok || e.SentAt > sentAt {
					sentAt, ok = e.SentAt, true
				}
			}
			delete(s.Unacked, seq)
			s.FreeSent(e)
		}
	}
	s.SndUna = ack
	s.DupAcks = 0
	return acked, sentAt, ok
}

// DrainInOrder removes and returns the contiguous run of buffered PDUs
// starting at RcvNxt, advancing RcvNxt past them. Recovery strategies call
// it after inserting arrivals into RcvBuf. The returned slice aliases a
// per-state scratch buffer: it is valid only until the next DrainInOrder
// call, which is fine for its callers (they consume the run synchronously).
func (s *TransferState) DrainInOrder() []*RecvPDU {
	out := s.drainScratch[:0]
	for {
		e, present := s.RcvBuf[s.RcvNxt]
		if !present {
			break
		}
		delete(s.RcvBuf, s.RcvNxt)
		s.RcvNxt++
		out = append(out, e)
	}
	s.drainScratch = out
	return out
}
