package mechanism

import (
	"time"

	"adaptive/internal/wire"
)

// SentPDU is a retransmission-buffer entry.
type SentPDU struct {
	PDU         *wire.PDU
	SentAt      time.Duration
	Retransmits int
}

// RecvPDU is an out-of-order reassembly entry.
type RecvPDU struct {
	PDU       *wire.PDU
	ArrivedAt time.Duration
	Recovered bool // reconstructed by FEC rather than received
}

// TransferState is the session context that must survive mechanism
// replacement: the paper's MSP-inspired requirement that a retransmission
// scheme can switch from go-back-n to selective repeat "within an active
// connection without loss of data" (§2.3) is met by keeping sequence state
// and both buffers here, outside any individual mechanism.
type TransferState struct {
	// Sender.
	SndUna  uint32              // oldest unacknowledged sequence
	SndNxt  uint32              // next sequence to assign
	Unacked map[uint32]*SentPDU // in-flight data, nil values never stored
	DupAcks int

	// Receiver.
	RcvNxt    uint32              // next expected in-order sequence
	RcvBuf    map[uint32]*RecvPDU // buffered out-of-order data
	RcvBufCap int                 // advertised-buffer capacity in PDUs

	// Round-trip estimation (Jacobson/Karels, with Karn's rule applied by
	// callers: retransmitted PDUs are never timed).
	SRTT   time.Duration
	RTTVar time.Duration
	RTO    time.Duration

	// Counters strategies share.
	Retransmissions uint64
	FECRecovered    uint64
	GapsAbandoned   uint64
}

// NewTransferState returns ready-to-use state.
func NewTransferState(rcvBufCap int, rtoInit time.Duration) *TransferState {
	if rcvBufCap <= 0 {
		rcvBufCap = 256
	}
	if rtoInit <= 0 {
		rtoInit = 200 * time.Millisecond
	}
	return &TransferState{
		Unacked:   make(map[uint32]*SentPDU),
		RcvBuf:    make(map[uint32]*RecvPDU),
		RcvBufCap: rcvBufCap,
		RTO:       rtoInit,
	}
}

// InFlight returns the number of unacknowledged data PDUs.
func (s *TransferState) InFlight() int { return len(s.Unacked) }

// Advertise returns the receive-window advertisement in PDUs.
func (s *TransferState) Advertise() uint16 {
	free := s.RcvBufCap - len(s.RcvBuf)
	if free < 0 {
		free = 0
	}
	if free > 0xffff {
		free = 0xffff
	}
	return uint16(free)
}

// ObserveRTT folds a fresh round-trip sample into SRTT/RTTVar/RTO.
func (s *TransferState) ObserveRTT(sample, rtoMin, rtoMax time.Duration) {
	if s.SRTT == 0 {
		s.SRTT = sample
		s.RTTVar = sample / 2
	} else {
		diff := sample - s.SRTT
		if diff < 0 {
			diff = -diff
		}
		s.RTTVar += (diff - s.RTTVar) / 4
		s.SRTT += (sample - s.SRTT) / 8
	}
	rto := s.SRTT + 4*s.RTTVar
	if rto < rtoMin {
		rto = rtoMin
	}
	if rtoMax > 0 && rto > rtoMax {
		rto = rtoMax
	}
	s.RTO = rto
}

// BackoffRTO doubles the retransmission timeout (exponential backoff) up to
// max.
func (s *TransferState) BackoffRTO(max time.Duration) {
	s.RTO *= 2
	if max > 0 && s.RTO > max {
		s.RTO = max
	}
}

// AckThrough removes all entries with seq < ack from the retransmission
// buffer and advances SndUna. It returns the number of PDUs acknowledged and
// the send timestamp of the newest acked, untimed==false entry (for RTT
// sampling); ok is false when no timeable sample exists.
func (s *TransferState) AckThrough(ack uint32) (acked int, sentAt time.Duration, ok bool) {
	if ack <= s.SndUna {
		return 0, 0, false
	}
	for seq := s.SndUna; seq < ack; seq++ {
		if e, present := s.Unacked[seq]; present {
			acked++
			if e.Retransmits == 0 { // Karn's rule
				if !ok || e.SentAt > sentAt {
					sentAt, ok = e.SentAt, true
				}
			}
			e.PDU.ReleasePayload()
			delete(s.Unacked, seq)
		}
	}
	s.SndUna = ack
	s.DupAcks = 0
	return acked, sentAt, ok
}

// DrainInOrder removes and returns the contiguous run of buffered PDUs
// starting at RcvNxt, advancing RcvNxt past them. Recovery strategies call
// it after inserting arrivals into RcvBuf.
func (s *TransferState) DrainInOrder() []*RecvPDU {
	var out []*RecvPDU
	for {
		e, present := s.RcvBuf[s.RcvNxt]
		if !present {
			return out
		}
		delete(s.RcvBuf, s.RcvNxt)
		s.RcvNxt++
		out = append(out, e)
	}
}
