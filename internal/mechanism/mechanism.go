// Package mechanism defines the abstract interfaces of the TKO session
// architecture (ADAPTIVE §4.2.2).
//
// The paper organizes fine-grain session functionality as C++ inheritance
// hierarchies rooted at abstract base classes — connection management,
// transmission management, reliability management, sequencing — whose
// concrete subclasses are composed into a TKO_Context. Here each base class
// is a Go interface; internal/conn, internal/xmit, internal/reliable and
// internal/order provide the concrete derived implementations, and
// internal/session composes them into a running session.
//
// Every mechanism that carries transfer-critical state implements
// StateCarrier so the segue operation (runtime mechanism replacement without
// data loss) can hand state between old and new instances.
package mechanism

import (
	"math/rand"
	"time"

	"adaptive/internal/event"
	"adaptive/internal/message"
	"adaptive/internal/netapi"
	"adaptive/internal/trace"
	"adaptive/internal/wire"
)

// Mechanism is implemented by every pluggable component.
type Mechanism interface {
	// Name identifies the concrete mechanism (e.g. "selective-repeat").
	Name() string
}

// NotificationKind enumerates events mechanisms raise toward the session's
// owner (the application callback and the MANTTS policy engine).
type NotificationKind int

const (
	NoteEstablished NotificationKind = iota // connection is open for data
	NoteClosed                              // connection fully terminated
	NoteEstablishFailed
	NoteSegue          // a mechanism was replaced at run time
	NotePeerReconfig   // peer requested/announced a reconfiguration
	NoteAppLoss        // data was irrecoverably lost (loss-tolerant mode)
	NoteSendQueueEmpty // all submitted data acked/flushed
	NotePolicyAction   // a TSA rule fired (detail describes the action)
	NotePeerDead       // keepalive dead-peer detection declared the peer gone
)

// Notification carries an event and optional detail to the session owner.
type Notification struct {
	Kind   NotificationKind
	Detail string
}

// MetricSink receives whitebox metric updates from mechanisms; UNITES
// implements it (§4.3). Mechanisms never format or aggregate — they only
// emit.
type MetricSink interface {
	Count(name string, delta uint64)
	Sample(name string, v float64)
	Gauge(name string, v float64)
}

// NopSink discards metrics (for tests of bare mechanisms).
type NopSink struct{}

func (NopSink) Count(string, uint64)   {}
func (NopSink) Sample(string, float64) {}
func (NopSink) Gauge(string, float64)  {}

// Env is the view a mechanism has of its enclosing TKO_Session. The session
// implements it; mechanisms hold no other reference to the session, which is
// what keeps them individually replaceable.
type Env interface {
	Clock() netapi.Clock
	Timers() *event.Manager
	Rand() *rand.Rand
	Metrics() MetricSink
	// Tracer returns the session's flight recorder; nil when tracing is
	// disabled (hooks must tolerate nil — trace.Recorder methods do).
	Tracer() *trace.Recorder

	// ConnID returns the session's connection identifier.
	ConnID() uint32
	// LocalPort and PeerAddr describe the transport addressing.
	LocalPort() uint16
	PeerAddr() netapi.Addr

	// EmitControl encodes and transmits a control PDU (ACK, NAK, handshake,
	// parity) immediately, bypassing window and rate gating.
	EmitControl(p *wire.PDU)
	// EmitData transmits a data PDU subject only to the wire (used for
	// retransmissions and FEC emission; window accounting already done).
	EmitData(p *wire.PDU)

	// ReleaseData hands receiver-side data up to the sequencing mechanism
	// and the application.
	ReleaseData(seq uint32, m *message.Message, eom bool)
	// Pump asks the session to re-run its transmit loop (e.g. after the
	// window opened or a rate-gap elapsed).
	Pump()

	// Notify raises an event to the session owner.
	Notify(n Notification)

	// State exposes the shared transfer state (sequence numbers,
	// retransmission and reassembly buffers) that survives segue.
	State() *TransferState

	// Spec returns the session's current configuration.
	Spec() *Spec
	// ApplySpec installs a (negotiation-adjusted) configuration,
	// re-synthesizing any mechanism whose kind or parameters changed.
	ApplySpec(s *Spec)

	// WindowOnLoss reports a loss event to the transmission-window
	// mechanism (adaptive windows shrink).
	WindowOnLoss()
	// SkipTo abandons receiver sequences below seq (loss-tolerant gap
	// abandonment), releasing any held-back later data to the application.
	SkipTo(seq uint32)
}

// StateCarrier lets segue move mechanism-private state between an old and a
// new instance. Export runs on the outgoing instance, Import on the incoming
// one; Import receives exactly what Export produced (or nil when switching
// from a mechanism without state).
type StateCarrier interface {
	ExportState() any
	ImportState(st any)
}

// ConnManager is the connection-management base class: implicit (config
// piggybacked on the first data PDU), explicit two-way, and explicit
// three-way handshakes, plus graceful/abortive termination (§4.1.1, §4.1.3).
type ConnManager interface {
	Mechanism
	// StartActive begins an active open toward the peer.
	StartActive(e Env)
	// StartPassive prepares the passive side (listener-spawned session).
	StartPassive(e Env)
	// OnPDU processes a connection-management PDU; it reports whether the
	// PDU was consumed.
	OnPDU(e Env, p *wire.PDU) bool
	// Established reports whether data may flow.
	Established() bool
	// Piggyback returns a config blob to attach to the first outgoing data
	// PDU, or nil (implicit connection setup).
	Piggyback(e Env) []byte
	// Close initiates termination; graceful waits for data drain
	// elsewhere — the session only calls Close once its send queue is
	// empty when graceful.
	Close(e Env, graceful bool)
	// Abort tears the connection down immediately without handshaking:
	// an unestablished connection reports NoteEstablishFailed (canceled
	// dial), an established one NoteClosed. Used by context cancellation
	// and dead-peer detection.
	Abort(e Env, why string)
	// Closed reports whether termination has completed.
	Closed() bool
}

// Window is the transmission-management base class controlling how many PDUs
// may be in flight (sliding window, stop-and-wait, adaptive/slow-start).
type Window interface {
	Mechanism
	// CanSend reports whether another data PDU may enter flight given the
	// current in-flight count and the peer's advertised window.
	CanSend(inFlight int, peerAdvert int) bool
	// OnAck informs the policy that acked PDUs left the network.
	OnAck(ackedPDUs int)
	// OnLoss informs the policy of a loss event (adaptive windows shrink).
	OnLoss()
	// Size returns the current local window in PDUs.
	Size() int
}

// Rate is the rate-control base class pacing transmissions by inter-PDU gap
// (the mechanism ADAPTIVE's congestion policy adjusts — §4.1.2).
type Rate interface {
	Mechanism
	// Delay returns how long transmission of a size-byte PDU must wait
	// from now; zero means send immediately.
	Delay(now time.Duration, size int) time.Duration
	// OnSent records a transmission for pacing bookkeeping.
	OnSent(now time.Duration, size int)
	// SetRate changes the pacing rate in bits/sec (0 disables pacing).
	SetRate(bps float64)
	// RateBps returns the current pacing rate (0 = unpaced).
	RateBps() float64
}

// Recovery is the reliability-management composite (Figure 5): error
// reporting (acks/naks) and error recovery (retransmission or forward error
// correction). Error detection is the checksum kind carried in the Spec and
// enforced at wire decode. Recovery instances are replaced in their entirety
// during segue, as the paper prescribes for composite components.
type Recovery interface {
	Mechanism
	StateCarrier

	// --- sender side ---

	// OnSendData is called when a fresh data PDU enters flight; reliable
	// strategies buffer it for retransmission.
	OnSendData(e Env, p *wire.PDU)
	// OnAck processes a cumulative acknowledgment.
	OnAck(e Env, p *wire.PDU)
	// OnNak processes a selective negative acknowledgment.
	OnNak(e Env, p *wire.PDU)
	// OnRTO fires on retransmission timeout.
	OnRTO(e Env)

	// --- receiver side ---

	// OnData processes an arriving data PDU (delivery via e.ReleaseData).
	OnData(e Env, p *wire.PDU)
	// OnParity processes an FEC parity PDU.
	OnParity(e Env, p *wire.PDU)

	// Reliable reports whether the strategy guarantees delivery (drives
	// graceful-close semantics and send-buffer retention).
	Reliable() bool
}

// Orderer is the sequencing base class deciding delivery order and duplicate
// handling between recovery and the application.
type Orderer interface {
	Mechanism
	// Submit accepts a PDU released by recovery and returns zero or more
	// deliveries now due, in delivery order.
	Submit(seq uint32, m *message.Message, eom bool) []Delivery
	// Skip abandons sequences below seq, releasing anything deliverable;
	// order-insensitive mechanisms return nil.
	Skip(seq uint32) []Delivery
	// Flush releases anything held back (connection teardown).
	Flush() []Delivery
}

// Delivery is one unit handed to the application.
type Delivery struct {
	Seq uint32
	Msg *message.Message
	EOM bool
}
