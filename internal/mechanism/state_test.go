package mechanism

import (
	"testing"
	"time"

	"adaptive/internal/message"
	"adaptive/internal/wire"
)

func TestNewTransferStateDefaults(t *testing.T) {
	st := NewTransferState(0, 0)
	if st.RcvBufCap != 256 || st.RTO != 200*time.Millisecond {
		t.Fatalf("defaults %d/%v", st.RcvBufCap, st.RTO)
	}
	if st.InFlight() != 0 {
		t.Fatal("fresh state has flight")
	}
}

func TestAdvertiseClamps(t *testing.T) {
	st := NewTransferState(1<<20, time.Second)
	if st.Advertise() != 0xffff {
		t.Fatalf("advertise %d, want clamp to 0xffff", st.Advertise())
	}
}

func TestAckThroughNoProgress(t *testing.T) {
	st := NewTransferState(8, time.Second)
	st.SndUna = 5
	if n, _, ok := st.AckThrough(3); n != 0 || ok {
		t.Fatal("stale ack made progress")
	}
	st.DupAcks = 2
	st.Unacked[5] = &SentPDU{PDU: &wire.PDU{Header: wire.Header{Seq: 5}, Payload: message.NewFromBytes([]byte("x"))}}
	if n, _, _ := st.AckThrough(6); n != 1 {
		t.Fatal("fresh ack made no progress")
	}
	if st.DupAcks != 0 {
		t.Fatal("progress did not reset dup-ack count")
	}
}

func TestDrainInOrderStopsAtGap(t *testing.T) {
	st := NewTransferState(8, time.Second)
	mk := func(seq uint32) *RecvPDU {
		return &RecvPDU{PDU: &wire.PDU{Header: wire.Header{Seq: seq}, Payload: message.NewFromBytes([]byte("p"))}}
	}
	st.RcvBuf[0] = mk(0)
	st.RcvBuf[1] = mk(1)
	st.RcvBuf[3] = mk(3)
	run := st.DrainInOrder()
	if len(run) != 2 || st.RcvNxt != 2 {
		t.Fatalf("drained %d, rcvNxt %d", len(run), st.RcvNxt)
	}
	if len(st.RcvBuf) != 1 {
		t.Fatal("gap entry drained")
	}
}

func TestNopSinkAndNotifications(t *testing.T) {
	var s NopSink
	s.Count("x", 1)
	s.Sample("x", 1)
	s.Gauge("x", 1)
	n := Notification{Kind: NoteSegue, Detail: "d"}
	if n.Kind != NoteSegue {
		t.Fatal("notification kind lost")
	}
}

func TestSpecStringMentionsMechanisms(t *testing.T) {
	s := DefaultSpec()
	out := s.String()
	for _, want := range []string{"selective-repeat", "fixed-window", "sequenced", "crc32"} {
		if !contains(out, want) {
			t.Fatalf("Spec.String %q missing %q", out, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
