// Package measure implements the language-based measurement interface of
// UNITES (§4.3: "metrics also may be requested using either a graphics-based
// or language-based interface ... a specification language that indicates
// what measurements to collect and what traffic to generate").
//
// The language is a small semicolon-separated statement list:
//
//	collect rel.retransmissions, app.* every 50ms;
//	generate cbr size=160 interval=20ms count=500;
//	generate bulk size=1048576 chunk=65536
//
// Statements:
//
//	collect <metric>[, <metric>...] [every <duration>]
//	    Builds the Transport Measurement Component: the metric allow-list
//	    (a trailing ".*" or "." selects a family) and the policy sampling
//	    rate.
//	generate <kind> <key>=<value>...
//	    Describes the traffic to generate. Kinds and keys:
//	      cbr       size, interval, count
//	      vbr       rate (fps), mean, burst, gop, count
//	      bulk      size, chunk
//	      keystroke gap, count
//	      reqresp   size, think, count
//	trace [spans] [sample=1/N] [buffer=<records>]
//	    Requests a flight recording of the session. sample keeps every Nth
//	    high-rate event (N a power of two; structural events are always
//	    kept); buffer sets the ring capacity in records and accepts k/m
//	    suffixes ("64k", "1m"); spans asks renderers to derive
//	    send->receive spans.
package measure

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"adaptive/internal/event"
	"adaptive/internal/mantts"
	"adaptive/internal/trace"
	"adaptive/internal/workload"
)

// WorkloadKind enumerates generator kinds the language can request.
type WorkloadKind int

const (
	WorkloadNone WorkloadKind = iota
	WorkloadCBR
	WorkloadVBR
	WorkloadBulk
	WorkloadKeystroke
	WorkloadReqResp
)

func (k WorkloadKind) String() string {
	switch k {
	case WorkloadNone:
		return "none"
	case WorkloadCBR:
		return "cbr"
	case WorkloadVBR:
		return "vbr"
	case WorkloadBulk:
		return "bulk"
	case WorkloadKeystroke:
		return "keystroke"
	case WorkloadReqResp:
		return "reqresp"
	}
	return fmt.Sprintf("workload(%d)", int(k))
}

// WorkloadSpec is a parsed generate statement.
type WorkloadSpec struct {
	Kind     WorkloadKind
	Size     int
	Chunk    int
	Interval time.Duration
	Rate     float64 // frames/sec for vbr
	Mean     int
	Burst    float64
	GOP      int
	Gap      time.Duration
	Think    time.Duration
	Count    uint64
}

// TraceSpec is a parsed trace statement.
type TraceSpec struct {
	Enabled bool
	Spans   bool   // derive send->receive spans when rendering
	Sample  uint64 // keep every Nth high-rate event (0/1 = all)
	Buffer  int    // ring capacity in records (0 = trace.DefaultBuffer)
}

// NewRecorder builds the requested flight recorder, or nil when the
// specification asked for no tracing.
func (t TraceSpec) NewRecorder() *trace.Recorder {
	if !t.Enabled {
		return nil
	}
	r := trace.NewRecorder(t.Buffer)
	if t.Sample > 1 {
		// Parse already validated the stride; SetSample cannot fail here.
		if err := r.SetSample(t.Sample); err != nil {
			panic(err)
		}
	}
	return r
}

// Spec is a fully parsed measurement specification.
type Spec struct {
	TMC      mantts.TMC
	Workload WorkloadSpec
	Trace    TraceSpec
}

// Parse compiles a specification string.
func Parse(input string) (*Spec, error) {
	spec := &Spec{}
	for _, stmt := range strings.Split(input, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		fields := strings.Fields(stmt)
		switch strings.ToLower(fields[0]) {
		case "collect":
			if err := spec.parseCollect(stmt[len(fields[0]):]); err != nil {
				return nil, err
			}
		case "generate":
			if err := spec.parseGenerate(fields[1:]); err != nil {
				return nil, err
			}
		case "trace":
			if err := spec.parseTrace(fields[1:]); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("measure: unknown statement %q", fields[0])
		}
	}
	return spec, nil
}

func (s *Spec) parseCollect(rest string) error {
	rest = strings.TrimSpace(rest)
	// Split off the optional "every <dur>" clause.
	if i := strings.LastIndex(strings.ToLower(rest), " every "); i >= 0 {
		durStr := strings.TrimSpace(rest[i+len(" every "):])
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return fmt.Errorf("measure: bad sampling interval %q: %v", durStr, err)
		}
		if d <= 0 {
			return fmt.Errorf("measure: non-positive sampling interval %v", d)
		}
		s.TMC.SampleRate = d
		rest = rest[:i]
	}
	for _, m := range strings.Split(rest, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		// Family selectors: "rel.*" and "rel." both mean the family.
		m = strings.TrimSuffix(m, "*")
		s.TMC.Metrics = append(s.TMC.Metrics, m)
	}
	if len(s.TMC.Metrics) == 0 {
		return fmt.Errorf("measure: collect statement names no metrics")
	}
	return nil
}

func (s *Spec) parseGenerate(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("measure: generate statement names no workload")
	}
	w := WorkloadSpec{Burst: 1, GOP: 12}
	switch strings.ToLower(args[0]) {
	case "cbr":
		w.Kind = WorkloadCBR
	case "vbr":
		w.Kind = WorkloadVBR
	case "bulk":
		w.Kind = WorkloadBulk
	case "keystroke":
		w.Kind = WorkloadKeystroke
	case "reqresp":
		w.Kind = WorkloadReqResp
	default:
		return fmt.Errorf("measure: unknown workload %q", args[0])
	}
	for _, kv := range args[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("measure: malformed parameter %q (want key=value)", kv)
		}
		var err error
		switch strings.ToLower(key) {
		case "size":
			w.Size, err = strconv.Atoi(val)
		case "chunk":
			w.Chunk, err = strconv.Atoi(val)
		case "interval":
			w.Interval, err = time.ParseDuration(val)
		case "rate":
			w.Rate, err = strconv.ParseFloat(val, 64)
		case "mean":
			w.Mean, err = strconv.Atoi(val)
		case "burst":
			w.Burst, err = strconv.ParseFloat(val, 64)
		case "gop":
			w.GOP, err = strconv.Atoi(val)
		case "gap":
			w.Gap, err = time.ParseDuration(val)
		case "think":
			w.Think, err = time.ParseDuration(val)
		case "count":
			var c int
			c, err = strconv.Atoi(val)
			w.Count = uint64(c)
		default:
			return fmt.Errorf("measure: unknown parameter %q for %v", key, w.Kind)
		}
		if err != nil {
			return fmt.Errorf("measure: bad value %q for %s: %v", val, key, err)
		}
	}
	if err := w.validate(); err != nil {
		return err
	}
	s.Workload = w
	return nil
}

func (s *Spec) parseTrace(args []string) error {
	t := TraceSpec{Enabled: true}
	for _, arg := range args {
		key, val, hasVal := strings.Cut(arg, "=")
		switch strings.ToLower(key) {
		case "spans":
			if hasVal {
				return fmt.Errorf("measure: trace option spans takes no value")
			}
			t.Spans = true
		case "sample":
			if !hasVal {
				return fmt.Errorf("measure: trace sample needs a value (sample=1/16)")
			}
			num, den, ok := strings.Cut(val, "/")
			if !ok || num != "1" {
				return fmt.Errorf("measure: trace sample must be a 1/N fraction, got %q", val)
			}
			n, err := strconv.ParseUint(den, 10, 64)
			if err != nil {
				return fmt.Errorf("measure: bad trace sample denominator %q: %v", den, err)
			}
			if n == 0 || n&(n-1) != 0 {
				return fmt.Errorf("measure: trace sample denominator must be a power of two, got %d", n)
			}
			t.Sample = n
		case "buffer":
			if !hasVal {
				return fmt.Errorf("measure: trace buffer needs a value (buffer=64k)")
			}
			n, err := parseBufferSize(val)
			if err != nil {
				return err
			}
			t.Buffer = n
		default:
			return fmt.Errorf("measure: unknown trace option %q", key)
		}
	}
	s.Trace = t
	return nil
}

// parseBufferSize parses a record count with an optional k/m suffix.
func parseBufferSize(val string) (int, error) {
	mult := 1
	num := strings.ToLower(val)
	switch {
	case strings.HasSuffix(num, "k"):
		mult, num = 1<<10, num[:len(num)-1]
	case strings.HasSuffix(num, "m"):
		mult, num = 1<<20, num[:len(num)-1]
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return 0, fmt.Errorf("measure: bad trace buffer %q: %v", val, err)
	}
	if n <= 0 {
		return 0, fmt.Errorf("measure: trace buffer must be positive, got %q", val)
	}
	return n * mult, nil
}

func (w *WorkloadSpec) validate() error {
	switch w.Kind {
	case WorkloadCBR:
		if w.Size <= 0 || w.Interval <= 0 {
			return fmt.Errorf("measure: cbr needs size and interval")
		}
	case WorkloadVBR:
		if w.Rate <= 0 || w.Mean <= 0 {
			return fmt.Errorf("measure: vbr needs rate and mean")
		}
	case WorkloadBulk:
		if w.Size <= 0 {
			return fmt.Errorf("measure: bulk needs size")
		}
	case WorkloadKeystroke:
		if w.Gap <= 0 {
			return fmt.Errorf("measure: keystroke needs gap")
		}
	case WorkloadReqResp:
		if w.Size <= 0 || w.Think < 0 {
			return fmt.Errorf("measure: reqresp needs size")
		}
	}
	return nil
}

// Build instantiates the described generator against a sender, returning a
// start function and an accessor for the generated count.
func (w *WorkloadSpec) Build(timers *event.Manager, out workload.Sender) (start func(), generated func() uint64, err error) {
	switch w.Kind {
	case WorkloadCBR:
		g := &workload.CBR{Timers: timers, Out: out, MsgSize: w.Size, Interval: w.Interval}
		return func() { g.Start(w.Count) }, func() uint64 { return g.Generated }, nil
	case WorkloadVBR:
		g := &workload.VBR{Timers: timers, Out: out, FrameRate: w.Rate, MeanSize: w.Mean, Burst: w.Burst, GroupLen: w.GOP}
		return func() { g.Start(w.Count) }, func() uint64 { return g.Generated }, nil
	case WorkloadBulk:
		g := &workload.Bulk{Out: out, TotalSize: w.Size, ChunkSize: w.Chunk}
		return func() { g.Start(timers.Clock()) }, func() uint64 { return g.Generated }, nil
	case WorkloadKeystroke:
		g := &workload.Keystroke{Timers: timers, Out: out, MeanGap: w.Gap, Seed: 1}
		return func() { g.Start(w.Count) }, func() uint64 { return g.Generated }, nil
	case WorkloadReqResp:
		return nil, nil, fmt.Errorf("measure: reqresp needs application wiring (use the workload package directly)")
	}
	return nil, nil, fmt.Errorf("measure: no workload specified")
}
