package measure

import (
	"strings"
	"testing"
	"time"

	"adaptive/internal/event"
	"adaptive/internal/netsim"
	"adaptive/internal/sim"
)

func TestParseCollect(t *testing.T) {
	s, err := Parse("collect rel.retransmissions, app.* every 50ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TMC.Metrics) != 2 || s.TMC.Metrics[0] != "rel.retransmissions" || s.TMC.Metrics[1] != "app." {
		t.Fatalf("metrics %v", s.TMC.Metrics)
	}
	if s.TMC.SampleRate != 50*time.Millisecond {
		t.Fatalf("sample rate %v", s.TMC.SampleRate)
	}
}

func TestParseCollectNoEvery(t *testing.T) {
	s, err := Parse("collect session.segues")
	if err != nil {
		t.Fatal(err)
	}
	if s.TMC.SampleRate != 0 || len(s.TMC.Metrics) != 1 {
		t.Fatalf("%+v", s.TMC)
	}
}

func TestParseGenerateCBR(t *testing.T) {
	s, err := Parse("generate cbr size=160 interval=20ms count=500")
	if err != nil {
		t.Fatal(err)
	}
	w := s.Workload
	if w.Kind != WorkloadCBR || w.Size != 160 || w.Interval != 20*time.Millisecond || w.Count != 500 {
		t.Fatalf("%+v", w)
	}
}

func TestParseGenerateVBRDefaults(t *testing.T) {
	s, err := Parse("generate vbr rate=30 mean=8000 burst=4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload.GOP != 12 {
		t.Fatalf("default GOP %d", s.Workload.GOP)
	}
}

func TestParseMultiStatement(t *testing.T) {
	s, err := Parse(`
		collect rel., app.delivered_bytes every 100ms;
		generate bulk size=1048576 chunk=65536
	`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload.Kind != WorkloadBulk || s.Workload.Size != 1<<20 || s.Workload.Chunk != 1<<16 {
		t.Fatalf("%+v", s.Workload)
	}
	if len(s.TMC.Metrics) != 2 {
		t.Fatalf("%v", s.TMC.Metrics)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"collect",                           // no metrics
		"collect x every nope",              // bad duration
		"collect x every -5ms",              // negative
		"transmit cbr",                      // unknown statement
		"generate warp size=1",              // unknown workload
		"generate cbr size",                 // malformed kv
		"generate cbr size=abc interval=1s", // bad value
		"generate cbr bogus=1",              // unknown key
		"generate cbr",                      // missing required params
		"generate keystroke",                // missing gap
		"generate",                          // bare
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}

func TestBuildAndRunCBR(t *testing.T) {
	s, err := Parse("generate cbr size=32 interval=5ms count=10")
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	n := netsim.New(k)
	timers := event.NewManager(n.Clock())
	var sent int
	start, generated, err := s.Workload.Build(timers, senderFunc(func(b []byte) error {
		sent += len(b)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	start()
	k.RunUntil(time.Second)
	if generated() != 10 || sent != 320 {
		t.Fatalf("generated %d sent %d", generated(), sent)
	}
}

func TestBuildBulk(t *testing.T) {
	s, _ := Parse("generate bulk size=1000 chunk=300")
	k := sim.NewKernel(1)
	n := netsim.New(k)
	timers := event.NewManager(n.Clock())
	count := 0
	start, generated, err := s.Workload.Build(timers, senderFunc(func(b []byte) error { count++; return nil }))
	if err != nil {
		t.Fatal(err)
	}
	start()
	if generated() != 4 || count != 4 {
		t.Fatalf("chunks %d/%d", generated(), count)
	}
}

func TestBuildReqRespRefused(t *testing.T) {
	s, _ := Parse("generate reqresp size=100 think=5ms count=10")
	k := sim.NewKernel(1)
	n := netsim.New(k)
	if _, _, err := s.Workload.Build(event.NewManager(n.Clock()), senderFunc(func([]byte) error { return nil })); err == nil {
		t.Fatal("reqresp Build should direct users to the workload package")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[WorkloadKind]string{
		WorkloadNone: "none", WorkloadCBR: "cbr", WorkloadVBR: "vbr",
		WorkloadBulk: "bulk", WorkloadKeystroke: "keystroke", WorkloadReqResp: "reqresp",
	} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
	if !strings.Contains(WorkloadKind(42).String(), "42") {
		t.Fatal("unknown kind unprintable")
	}
}

type senderFunc func([]byte) error

func (f senderFunc) Send(b []byte) error { return f(b) }

func TestParseTrace(t *testing.T) {
	s, err := Parse("trace spans sample=1/16 buffer=64k")
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Trace
	if !tr.Enabled || !tr.Spans || tr.Sample != 16 || tr.Buffer != 64<<10 {
		t.Fatalf("trace spec %+v", tr)
	}
	rec := tr.NewRecorder()
	if rec == nil {
		t.Fatal("NewRecorder returned nil for an enabled trace spec")
	}
}

func TestParseTraceBare(t *testing.T) {
	s, err := Parse("trace")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Trace.Enabled || s.Trace.Sample != 0 || s.Trace.Buffer != 0 || s.Trace.Spans {
		t.Fatalf("bare trace spec %+v", s.Trace)
	}
}

func TestParseTraceCombined(t *testing.T) {
	s, err := Parse("collect rel. every 100ms; trace buffer=1m; generate bulk size=4096")
	if err != nil {
		t.Fatal(err)
	}
	if s.Trace.Buffer != 1<<20 || s.Workload.Kind != WorkloadBulk || len(s.TMC.Metrics) != 1 {
		t.Fatalf("%+v", s)
	}
}

func TestTraceSpecDisabledRecorder(t *testing.T) {
	var disabled TraceSpec
	if disabled.NewRecorder() != nil {
		t.Fatal("disabled trace spec built a recorder")
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []struct {
		input, want string
	}{
		{"trace sample", "needs a value"},
		{"trace sample=16", "1/N fraction"},
		{"trace sample=2/16", "1/N fraction"},
		{"trace sample=1/12", "power of two"},
		{"trace sample=1/0", "power of two"},
		{"trace sample=1/x", "denominator"},
		{"trace buffer", "needs a value"},
		{"trace buffer=0", "must be positive"},
		{"trace buffer=-4k", "must be positive"},
		{"trace buffer=lots", "bad trace buffer"},
		{"trace spans=yes", "takes no value"},
		{"trace verbose", "unknown trace option"},
	}
	for _, c := range cases {
		if _, err := Parse(c.input); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.input, err, c.want)
		}
	}
}
