// Package conn provides the connection-management mechanisms (ADAPTIVE
// §4.1.1): implicit setup, where the session configuration is piggybacked on
// the first data PDU so latency-sensitive request-response applications pay
// no handshake round trip, and explicit two-way / three-way handshakes that
// carry QoS negotiation payloads. Termination (§4.1.3) supports graceful
// (FIN/FINACK after drain) and abortive close.
package conn

import (
	"bytes"
	"time"

	"adaptive/internal/event"
	"adaptive/internal/mechanism"
	"adaptive/internal/message"
	"adaptive/internal/wire"
)

// state is the connection FSM state.
type state int

const (
	stIdle    state = iota
	stReqSent       // active: CONNREQ sent, awaiting CONNACK
	stAckSent       // passive 3-way: CONNACK sent, awaiting CONNCONF
	stEstablished
	stFinSent // FIN sent, awaiting FINACK
	stClosed
)

// MaxHandshakeRetries bounds CONNREQ/FIN retransmissions before giving up.
const MaxHandshakeRetries = 5

// base carries the machinery shared by all connection managers.
type base struct {
	st          state
	retries     int
	timer       *event.Event
	handshakeT0 time.Duration // when the active open began (latency metric)
}

func (b *base) Established() bool { return b.st == stEstablished }
func (b *base) Closed() bool      { return b.st == stClosed }

func (b *base) stopTimer() {
	if b.timer != nil {
		b.timer.Cancel()
		b.timer = nil
	}
}

func (b *base) becomeEstablished(e mechanism.Env) {
	b.stopTimer()
	b.st = stEstablished
	elapsed := e.Clock().Now() - b.handshakeT0
	e.Metrics().Sample("conn.establish_latency_ns", float64(elapsed))
	e.Notify(mechanism.Notification{Kind: mechanism.NoteEstablished})
	e.Pump()
}

func (b *base) fail(e mechanism.Env, why string) {
	b.stopTimer()
	b.st = stClosed
	e.Notify(mechanism.Notification{Kind: mechanism.NoteEstablishFailed, Detail: why})
}

// abort tears the connection down without any closing handshake. Before
// establishment it reads as a failed open (canceled dial); afterwards as an
// abortive close (dead peer, application abort).
func (b *base) abort(e mechanism.Env, why string) {
	if b.st == stClosed {
		return
	}
	if b.st != stEstablished && b.st != stFinSent {
		b.fail(e, why)
		return
	}
	b.stopTimer()
	b.st = stClosed
	e.Notify(mechanism.Notification{Kind: mechanism.NoteClosed, Detail: why})
}

// backoff returns the handshake retry delay for the given attempt number
// (1-based): the smoothed RTO doubled per attempt, capped at the Spec's
// RTOMax. Exponential growth keeps a partitioned network from being hammered
// at a fixed cadence while the partition lasts.
func backoff(e mechanism.Env, attempt int) time.Duration {
	d := e.State().RTO
	for i := 1; i < attempt && d < e.Spec().RTOMax; i++ {
		d *= 2
	}
	if max := e.Spec().RTOMax; max > 0 && d > max {
		d = max
	}
	return d
}

// retryDelay combines backoff with the establishment deadline: the timer
// never fires later than the deadline, so expiry is detected promptly.
func (b *base) retryDelay(e mechanism.Env, attempt int) time.Duration {
	d := backoff(e, attempt)
	if dl := e.Spec().EstablishTimeout; dl > 0 {
		if rem := b.handshakeT0 + dl - e.Clock().Now(); rem < d {
			d = rem
		}
	}
	return d
}

// deadlineExceeded reports whether the establishment deadline has passed.
func (b *base) deadlineExceeded(e mechanism.Env) bool {
	dl := e.Spec().EstablishTimeout
	return dl > 0 && e.Clock().Now()-b.handshakeT0 >= dl
}

// sendFin starts (or retries) graceful termination.
func (b *base) sendFin(e mechanism.Env) {
	if b.retries > MaxHandshakeRetries {
		b.stopTimer()
		b.st = stClosed
		e.Notify(mechanism.Notification{Kind: mechanism.NoteClosed, Detail: "fin retries exhausted"})
		return
	}
	b.retries++
	e.EmitControl(&wire.PDU{Header: wire.Header{Type: wire.TFin, Seq: e.State().SndNxt}})
	rto := e.State().RTO
	b.timer = e.Timers().Schedule(rto, func() { b.sendFin(e) })
}

// handleCommonClose processes FIN/FINACK PDUs shared by all managers. It
// reports whether the PDU was consumed.
func (b *base) handleCommonClose(e mechanism.Env, p *wire.PDU) bool {
	switch p.Type {
	case wire.TFin:
		// Peer is closing; acknowledge and close our side.
		e.EmitControl(&wire.PDU{Header: wire.Header{Type: wire.TFinAck, Ack: p.Seq}})
		if b.st != stClosed {
			b.stopTimer()
			b.st = stClosed
			e.Notify(mechanism.Notification{Kind: mechanism.NoteClosed, Detail: "peer fin"})
		}
		return true
	case wire.TFinAck:
		if b.st == stFinSent {
			b.stopTimer()
			b.st = stClosed
			e.Notify(mechanism.Notification{Kind: mechanism.NoteClosed})
		}
		return true
	}
	return false
}

func (b *base) close(e mechanism.Env, graceful bool) {
	switch b.st {
	case stClosed:
		return
	case stEstablished:
		if graceful {
			b.st = stFinSent
			b.retries = 0
			b.sendFin(e)
			return
		}
		fallthrough
	default:
		b.stopTimer()
		b.st = stClosed
		e.Notify(mechanism.Notification{Kind: mechanism.NoteClosed, Detail: "abort"})
	}
}

// Implicit performs no handshake: the active side is immediately
// established and attaches its TLV-encoded Spec to the first data PDU
// (FlagImplicitCfg); the passive side is spawned established by the listener.
type Implicit struct {
	base
	piggybacked bool
}

var _ mechanism.ConnManager = (*Implicit)(nil)

// NewImplicit returns an implicit connection manager.
func NewImplicit() *Implicit { return &Implicit{} }

func (c *Implicit) Name() string { return "implicit" }

func (c *Implicit) StartActive(e mechanism.Env) {
	c.handshakeT0 = e.Clock().Now()
	c.becomeEstablished(e)
}

func (c *Implicit) StartPassive(e mechanism.Env) {
	c.handshakeT0 = e.Clock().Now()
	c.piggybacked = true // passive side never piggybacks
	c.becomeEstablished(e)
}

func (c *Implicit) OnPDU(e mechanism.Env, p *wire.PDU) bool {
	return c.handleCommonClose(e, p)
}

// Piggyback returns the Spec blob exactly once, for the first data PDU.
func (c *Implicit) Piggyback(e mechanism.Env) []byte {
	if c.piggybacked {
		return nil
	}
	c.piggybacked = true
	return mechanism.EncodeSpec(e.Spec())
}

func (c *Implicit) Close(e mechanism.Env, graceful bool) { c.close(e, graceful) }

func (c *Implicit) Abort(e mechanism.Env, why string) { c.abort(e, why) }

// Explicit performs a negotiated handshake: CONNREQ carries the proposed
// Spec; CONNACK returns the (possibly adjusted) Spec the passive side
// accepted; with ThreeWay set the active side confirms with CONNCONF before
// either side trusts the connection.
type Explicit struct {
	base
	ThreeWay bool
	proposed []byte // Spec blob sent in CONNREQ, to detect peer adjustment
}

var _ mechanism.ConnManager = (*Explicit)(nil)

// NewExplicit returns a handshaking connection manager; threeWay selects the
// 3-way variant.
func NewExplicit(threeWay bool) *Explicit { return &Explicit{ThreeWay: threeWay} }

func (c *Explicit) Name() string {
	if c.ThreeWay {
		return "explicit-3way"
	}
	return "explicit-2way"
}

func (c *Explicit) StartActive(e mechanism.Env) {
	c.handshakeT0 = e.Clock().Now()
	c.st = stReqSent
	c.retries = 0
	c.sendReq(e)
}

func (c *Explicit) sendReq(e mechanism.Env) {
	if c.st != stReqSent {
		return // aborted (context cancellation) while a retry was pending
	}
	if c.retries > MaxHandshakeRetries {
		c.fail(e, "connreq retries exhausted")
		return
	}
	if c.deadlineExceeded(e) {
		c.fail(e, "establish deadline exceeded")
		return
	}
	c.retries++
	if c.retries > 1 {
		e.Metrics().Count("conn.handshake_retries", 1)
	}
	c.proposed = mechanism.EncodeSpec(e.Spec())
	p := &wire.PDU{
		Header:  wire.Header{Type: wire.TConnReq},
		Payload: message.NewFromBytes(c.proposed),
	}
	if c.ThreeWay {
		p.Aux = 3
	} else {
		p.Aux = 2
	}
	e.EmitControl(p)
	p.ReleasePayload()
	c.timer = e.Timers().Schedule(c.retryDelay(e, c.retries), func() { c.sendReq(e) })
}

func (c *Explicit) StartPassive(e mechanism.Env) {
	c.handshakeT0 = e.Clock().Now()
	// The listener passes the triggering CONNREQ through OnPDU.
}

func (c *Explicit) sendAck(e mechanism.Env) {
	p := &wire.PDU{
		Header:  wire.Header{Type: wire.TConnAck},
		Payload: message.NewFromBytes(mechanism.EncodeSpec(e.Spec())),
	}
	e.EmitControl(p)
	p.ReleasePayload()
}

func (c *Explicit) OnPDU(e mechanism.Env, p *wire.PDU) bool {
	if c.handleCommonClose(e, p) {
		return true
	}
	switch p.Type {
	case wire.TConnReq:
		// Passive side (or a retransmitted request): acknowledge. The
		// listener already installed the adjusted Spec before handing us
		// the PDU, so the CONNACK we emit carries the negotiated result.
		switch c.st {
		case stIdle, stAckSent:
			c.sendAck(e)
			if c.ThreeWay {
				if c.st == stIdle {
					c.st = stAckSent
					c.armAckRetry(e)
				}
			} else {
				c.becomeEstablished(e)
			}
		case stEstablished:
			// Duplicate request after establishment: re-ack so a lost
			// CONNACK doesn't strand the peer.
			c.sendAck(e)
		}
		return true
	case wire.TConnAck:
		if c.st != stReqSent {
			if c.st == stEstablished && c.ThreeWay {
				// Our CONNCONF was lost; repeat it.
				e.EmitControl(&wire.PDU{Header: wire.Header{Type: wire.TConnConf}})
			}
			return true
		}
		// Adopt the peer-adjusted Spec (negotiation result) — but only
		// when the peer actually adjusted it. Applying an unmodified
		// echo of our own proposal would revert any reconfiguration
		// that raced with the handshake.
		if blob := p.PayloadBytes(); len(blob) > 0 && !bytes.Equal(blob, c.proposed) {
			if sp, err := mechanism.DecodeSpec(blob); err == nil {
				e.ApplySpec(sp)
			}
		}
		if c.ThreeWay {
			e.EmitControl(&wire.PDU{Header: wire.Header{Type: wire.TConnConf}})
		}
		c.becomeEstablished(e)
		return true
	case wire.TConnConf:
		if c.st == stAckSent {
			c.becomeEstablished(e)
		}
		return true
	}
	return false
}

func (c *Explicit) armAckRetry(e mechanism.Env) {
	c.retries = 0
	var retry func()
	retry = func() {
		if c.st != stAckSent {
			return
		}
		c.retries++
		if c.retries > MaxHandshakeRetries {
			c.fail(e, "connconf never arrived")
			return
		}
		c.sendAck(e)
		c.timer = e.Timers().Schedule(backoff(e, c.retries+1), retry)
	}
	c.timer = e.Timers().Schedule(backoff(e, 1), retry)
}

func (c *Explicit) Piggyback(mechanism.Env) []byte { return nil }

func (c *Explicit) Close(e mechanism.Env, graceful bool) { c.close(e, graceful) }

func (c *Explicit) Abort(e mechanism.Env, why string) { c.abort(e, why) }
