package conn

import (
	"testing"
	"time"

	"adaptive/internal/mechanism"
	"adaptive/internal/mechanism/mechtest"
	"adaptive/internal/message"
	"adaptive/internal/wire"
)

func established(e *mechtest.Env) bool {
	for _, n := range e.Notes {
		if n.Kind == mechanism.NoteEstablished {
			return true
		}
	}
	return false
}

func closed(e *mechtest.Env) bool {
	for _, n := range e.Notes {
		if n.Kind == mechanism.NoteClosed {
			return true
		}
	}
	return false
}

func TestImplicitEstablishedImmediately(t *testing.T) {
	e := mechtest.New(nil)
	c := NewImplicit()
	c.StartActive(e)
	if !c.Established() || !established(e) {
		t.Fatal("implicit not established at StartActive")
	}
	if e.Pumps == 0 {
		t.Fatal("session not pumped at establishment")
	}
	if len(e.Control) != 0 {
		t.Fatal("implicit emitted handshake PDUs")
	}
	if len(e.Sink.Samples["conn.establish_latency_ns"]) != 1 {
		t.Fatal("establishment latency not sampled")
	}
}

func TestImplicitPiggybackOnce(t *testing.T) {
	e := mechtest.New(nil)
	c := NewImplicit()
	c.StartActive(e)
	blob := c.Piggyback(e)
	if len(blob) == 0 {
		t.Fatal("no piggyback on first data PDU")
	}
	if sp, err := mechanism.DecodeSpec(blob); err != nil || sp.Recovery != e.SpecV.Recovery {
		t.Fatalf("piggyback blob undecodable: %v", err)
	}
	if c.Piggyback(e) != nil {
		t.Fatal("piggybacked twice")
	}
}

func TestImplicitPassiveNeverPiggybacks(t *testing.T) {
	e := mechtest.New(nil)
	c := NewImplicit()
	c.StartPassive(e)
	if !c.Established() {
		t.Fatal("passive implicit not established")
	}
	if c.Piggyback(e) != nil {
		t.Fatal("passive side piggybacked")
	}
}

func TestExplicit2WayHandshake(t *testing.T) {
	active, passive := mechtest.New(nil), mechtest.New(nil)
	a, p := NewExplicit(false), NewExplicit(false)

	a.StartActive(active)
	req := active.LastControl(wire.TConnReq)
	if req == nil || req.Aux != 2 {
		t.Fatalf("no 2-way CONNREQ: %v", req)
	}
	if a.Established() {
		t.Fatal("active established before CONNACK")
	}

	p.StartPassive(passive)
	if !p.OnPDU(passive, req) {
		t.Fatal("CONNREQ not consumed")
	}
	if !p.Established() {
		t.Fatal("2-way passive not established after CONNREQ")
	}
	ack := passive.LastControl(wire.TConnAck)
	if ack == nil {
		t.Fatal("no CONNACK")
	}
	if !a.OnPDU(active, ack) {
		t.Fatal("CONNACK not consumed")
	}
	if !a.Established() || !established(active) {
		t.Fatal("active not established after CONNACK")
	}
	// No spurious ApplySpec when the peer echoed the proposal unchanged.
	if len(active.Applied) != 0 {
		t.Fatal("unchanged proposal re-applied")
	}
}

func TestExplicit3WayHandshake(t *testing.T) {
	active, passive := mechtest.New(nil), mechtest.New(nil)
	a, p := NewExplicit(true), NewExplicit(true)

	a.StartActive(active)
	req := active.LastControl(wire.TConnReq)
	if req.Aux != 3 {
		t.Fatalf("CONNREQ aux %d", req.Aux)
	}
	p.StartPassive(passive)
	p.OnPDU(passive, req)
	if p.Established() {
		t.Fatal("3-way passive established before CONNCONF")
	}
	ack := passive.LastControl(wire.TConnAck)
	a.OnPDU(active, ack)
	if !a.Established() {
		t.Fatal("active not established after CONNACK")
	}
	conf := active.LastControl(wire.TConnConf)
	if conf == nil {
		t.Fatal("active sent no CONNCONF")
	}
	p.OnPDU(passive, conf)
	if !p.Established() {
		t.Fatal("passive not established after CONNCONF")
	}
}

func TestExplicitAdjustedSpecApplied(t *testing.T) {
	active := mechtest.New(nil)
	a := NewExplicit(false)
	a.StartActive(active)

	adjusted := *active.SpecV
	adjusted.WindowSize = 2
	ack := &wire.PDU{Header: wire.Header{Type: wire.TConnAck}}
	ack.Payload = payloadOf(mechanism.EncodeSpec(&adjusted))
	a.OnPDU(active, ack)
	if len(active.Applied) != 1 || active.Applied[0].WindowSize != 2 {
		t.Fatalf("adjusted spec not applied: %v", active.Applied)
	}
}

func TestConnReqRetransmitsAndFails(t *testing.T) {
	e := mechtest.New(nil)
	c := NewExplicit(false)
	c.StartActive(e)
	e.Kernel.RunUntil(time.Minute) // nobody answers
	if got := e.ControlCount(wire.TConnReq); got != MaxHandshakeRetries+1 {
		t.Fatalf("%d CONNREQ attempts, want %d", got, MaxHandshakeRetries+1)
	}
	var failed bool
	for _, n := range e.Notes {
		if n.Kind == mechanism.NoteEstablishFailed {
			failed = true
		}
	}
	if !failed {
		t.Fatal("establishment failure never reported")
	}
	if !c.Closed() {
		t.Fatal("failed connection not closed")
	}
}

func TestDuplicateConnReqReacked(t *testing.T) {
	passive := mechtest.New(nil)
	p := NewExplicit(false)
	p.StartPassive(passive)
	req := &wire.PDU{Header: wire.Header{Type: wire.TConnReq, Aux: 2}}
	req.Payload = payloadOf(mechanism.EncodeSpec(passive.SpecV))
	p.OnPDU(passive, req)
	p.OnPDU(passive, req) // retransmitted request (our CONNACK was lost)
	if got := passive.ControlCount(wire.TConnAck); got != 2 {
		t.Fatalf("%d CONNACKs for duplicate request", got)
	}
}

func TestLostConnConfRecovered(t *testing.T) {
	active := mechtest.New(nil)
	a := NewExplicit(true)
	a.StartActive(active)
	ack := &wire.PDU{Header: wire.Header{Type: wire.TConnAck}}
	a.OnPDU(active, ack)
	if got := active.ControlCount(wire.TConnConf); got != 1 {
		t.Fatalf("%d CONNCONFs", got)
	}
	// Duplicate CONNACK means our CONNCONF was lost: repeat it.
	a.OnPDU(active, ack)
	if got := active.ControlCount(wire.TConnConf); got != 2 {
		t.Fatalf("lost CONNCONF not repeated (%d)", got)
	}
}

func TestGracefulClose(t *testing.T) {
	a, b := mechtest.New(nil), mechtest.New(nil)
	ca, cb := NewImplicit(), NewImplicit()
	ca.StartActive(a)
	cb.StartPassive(b)

	ca.Close(a, true)
	fin := a.LastControl(wire.TFin)
	if fin == nil {
		t.Fatal("no FIN")
	}
	if ca.Closed() {
		t.Fatal("closed before FINACK")
	}
	cb.OnPDU(b, fin)
	if !cb.Closed() || !closed(b) {
		t.Fatal("peer not closed on FIN")
	}
	finack := b.LastControl(wire.TFinAck)
	ca.OnPDU(a, finack)
	if !ca.Closed() || !closed(a) {
		t.Fatal("closer not closed on FINACK")
	}
}

func TestAbortiveClose(t *testing.T) {
	e := mechtest.New(nil)
	c := NewImplicit()
	c.StartActive(e)
	c.Close(e, false)
	if !c.Closed() {
		t.Fatal("abort did not close")
	}
	if e.LastControl(wire.TFin) != nil {
		t.Fatal("abortive close sent FIN")
	}
}

func TestFinRetransmitsThenGivesUp(t *testing.T) {
	e := mechtest.New(nil)
	c := NewImplicit()
	c.StartActive(e)
	c.Close(e, true)
	e.Kernel.RunUntil(10 * time.Minute) // FINACK never comes
	if got := e.ControlCount(wire.TFin); got != MaxHandshakeRetries+1 {
		t.Fatalf("%d FIN attempts", got)
	}
	if !c.Closed() {
		t.Fatal("never gave up on close")
	}
}

func TestCloseIdempotent(t *testing.T) {
	e := mechtest.New(nil)
	c := NewImplicit()
	c.StartActive(e)
	c.Close(e, false)
	notes := len(e.Notes)
	c.Close(e, false)
	c.Close(e, true)
	if len(e.Notes) != notes {
		t.Fatal("repeated close re-notified")
	}
}

func payloadOf(b []byte) *message.Message { return message.NewFromBytes(b) }
