// Package event implements the TKO_Event service (ADAPTIVE §4.2.1):
// schedulable, cancellable, one-shot or periodic timer events for protocol
// mechanisms (retransmission timers, rate-control gaps, periodic probes,
// policy evaluation ticks).
//
// Events run on the clock provider's event loop, so mechanism code needs no
// locking. The manager also keeps scheduling statistics, which UNITES exposes
// as whitebox metrics.
package event

import (
	"time"

	"adaptive/internal/netapi"
	"adaptive/internal/sim"
)

// Stats counts timer activity for whitebox metrics.
type Stats struct {
	Scheduled uint64
	Expired   uint64
	Canceled  uint64
}

// Manager creates events against a clock.
type Manager struct {
	clock netapi.Clock
	k     *sim.Kernel // non-nil when clock is kernel-backed: arming skips Timer boxing
	stats Stats
	blk   []Event // block allocator: Events are created in batches of eventBlock
}

// eventBlock is the Event-struct allocation granule. Events live as long as
// their owning mechanism and are never recycled individually, so carving
// them from a shared backing array is safe and cuts the per-Event heap
// allocation to one per block.
const eventBlock = 16

// NewManager returns a Manager driving timers from clock. A clock backed by a
// simulation kernel (netsim.Clock) is detected here once, so every arm/re-arm
// can schedule directly on the kernel: no per-arm closure and no boxing of the
// value-type sim.Timer into the netapi.Timer interface.
func NewManager(clock netapi.Clock) *Manager {
	m := &Manager{clock: clock}
	if kc, ok := clock.(interface{ Kernel() *sim.Kernel }); ok {
		m.k = kc.Kernel()
	}
	return m
}

// Clock returns the underlying clock.
func (m *Manager) Clock() netapi.Clock { return m.clock }

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// Event is a scheduled timer. Methods must be called from the provider's
// event loop (the same discipline as all protocol code).
type Event struct {
	mgr      *Manager
	timer    netapi.Timer // generic-clock path
	simTimer sim.Timer    // kernel fast path (value type, no boxing)
	period   time.Duration // 0 for one-shot
	fn       func()
	fireFn   func() // e.fire bound once; reused for every (re)arm
	stopped  bool
	pending  bool
	fireSeen uint64
}

// Schedule runs fn once after d.
func (m *Manager) Schedule(d time.Duration, fn func()) *Event {
	return m.schedule(d, 0, fn)
}

// SchedulePeriodic runs fn after d and then every period thereafter until
// canceled. A zero or negative period panics.
func (m *Manager) SchedulePeriodic(d, period time.Duration, fn func()) *Event {
	if period <= 0 {
		panic("event: non-positive period")
	}
	return m.schedule(d, period, fn)
}

func (m *Manager) schedule(d, period time.Duration, fn func()) *Event {
	if fn == nil {
		panic("event: nil fn")
	}
	if len(m.blk) == 0 {
		m.blk = make([]Event, eventBlock)
	}
	e := &m.blk[0]
	m.blk = m.blk[1:]
	e.mgr, e.period, e.fn = m, period, fn
	m.arm(e, d)
	return e
}

func (m *Manager) arm(e *Event, d time.Duration) {
	m.stats.Scheduled++
	e.pending = true
	if m.k != nil {
		// Closure-free: the kernel calls fireEvent(e). Boxing *Event into
		// any is pointer-sized and allocation-free.
		e.simTimer = m.k.ScheduleArg(d, fireEvent, e)
	} else {
		if e.fireFn == nil {
			e.fireFn = e.fire // bound once; reused for every re-arm
		}
		e.timer = m.clock.AfterFunc(d, e.fireFn)
	}
}

// fireEvent is the kernel-side trampoline for the sim fast path.
func fireEvent(v any) { v.(*Event).fire() }

// stopTimer stops whichever underlying timer is live. Stopping a zero or
// spent sim.Timer is a safe no-op (generation check).
func (e *Event) stopTimer() {
	if e.mgr.k != nil {
		e.simTimer.Stop()
	} else if e.timer != nil {
		e.timer.Stop()
	}
}

func (e *Event) fire() {
	if e.stopped {
		return
	}
	e.pending = false
	e.mgr.stats.Expired++
	e.fireSeen++
	e.fn()
	if e.period > 0 && !e.stopped {
		e.mgr.arm(e, e.period)
	}
}

// Cancel stops the event (and all future periods). It reports whether a
// firing was still pending.
func (e *Event) Cancel() bool {
	if e.stopped {
		return false
	}
	e.stopped = true
	was := e.pending
	e.pending = false
	e.stopTimer()
	if was {
		e.mgr.stats.Canceled++
	}
	return was
}

// Reset re-arms a one-shot event to fire after d from now, canceling any
// pending firing. Reset on a periodic event re-bases the next firing.
func (e *Event) Reset(d time.Duration) {
	e.stopTimer()
	e.stopped = false
	e.mgr.arm(e, d)
}

// Pending reports whether a firing is scheduled.
func (e *Event) Pending() bool { return e.pending && !e.stopped }

// Fired returns how many times the event has expired.
func (e *Event) Fired() uint64 { return e.fireSeen }
