// Package event implements the TKO_Event service (ADAPTIVE §4.2.1):
// schedulable, cancellable, one-shot or periodic timer events for protocol
// mechanisms (retransmission timers, rate-control gaps, periodic probes,
// policy evaluation ticks).
//
// Events run on the clock provider's event loop, so mechanism code needs no
// locking. The manager also keeps scheduling statistics, which UNITES exposes
// as whitebox metrics.
package event

import (
	"time"

	"adaptive/internal/netapi"
)

// Stats counts timer activity for whitebox metrics.
type Stats struct {
	Scheduled uint64
	Expired   uint64
	Canceled  uint64
}

// Manager creates events against a clock.
type Manager struct {
	clock netapi.Clock
	stats Stats
}

// NewManager returns a Manager driving timers from clock.
func NewManager(clock netapi.Clock) *Manager {
	return &Manager{clock: clock}
}

// Clock returns the underlying clock.
func (m *Manager) Clock() netapi.Clock { return m.clock }

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// Event is a scheduled timer. Methods must be called from the provider's
// event loop (the same discipline as all protocol code).
type Event struct {
	mgr      *Manager
	timer    netapi.Timer
	period   time.Duration // 0 for one-shot
	fn       func()
	stopped  bool
	pending  bool
	fireSeen uint64
}

// Schedule runs fn once after d.
func (m *Manager) Schedule(d time.Duration, fn func()) *Event {
	return m.schedule(d, 0, fn)
}

// SchedulePeriodic runs fn after d and then every period thereafter until
// canceled. A zero or negative period panics.
func (m *Manager) SchedulePeriodic(d, period time.Duration, fn func()) *Event {
	if period <= 0 {
		panic("event: non-positive period")
	}
	return m.schedule(d, period, fn)
}

func (m *Manager) schedule(d, period time.Duration, fn func()) *Event {
	if fn == nil {
		panic("event: nil fn")
	}
	e := &Event{mgr: m, period: period, fn: fn}
	m.arm(e, d)
	return e
}

func (m *Manager) arm(e *Event, d time.Duration) {
	m.stats.Scheduled++
	e.pending = true
	e.timer = m.clock.AfterFunc(d, func() { e.fire() })
}

func (e *Event) fire() {
	if e.stopped {
		return
	}
	e.pending = false
	e.mgr.stats.Expired++
	e.fireSeen++
	e.fn()
	if e.period > 0 && !e.stopped {
		e.mgr.arm(e, e.period)
	}
}

// Cancel stops the event (and all future periods). It reports whether a
// firing was still pending.
func (e *Event) Cancel() bool {
	if e.stopped {
		return false
	}
	e.stopped = true
	was := e.pending
	e.pending = false
	if e.timer != nil {
		e.timer.Stop()
	}
	if was {
		e.mgr.stats.Canceled++
	}
	return was
}

// Reset re-arms a one-shot event to fire after d from now, canceling any
// pending firing. Reset on a periodic event re-bases the next firing.
func (e *Event) Reset(d time.Duration) {
	if e.timer != nil {
		e.timer.Stop()
	}
	e.stopped = false
	e.mgr.arm(e, d)
}

// Pending reports whether a firing is scheduled.
func (e *Event) Pending() bool { return e.pending && !e.stopped }

// Fired returns how many times the event has expired.
func (e *Event) Fired() uint64 { return e.fireSeen }
