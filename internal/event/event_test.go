package event

import (
	"testing"
	"time"

	"adaptive/internal/netsim"
	"adaptive/internal/sim"
)

func newMgr() (*sim.Kernel, *Manager) {
	k := sim.NewKernel(1)
	n := netsim.New(k)
	return k, NewManager(n.Clock())
}

func TestOneShot(t *testing.T) {
	k, m := newMgr()
	var at time.Duration
	m.Schedule(7*time.Millisecond, func() { at = k.Now() })
	k.Run()
	if at != 7*time.Millisecond {
		t.Fatalf("fired at %v", at)
	}
	if s := m.Stats(); s.Scheduled != 1 || s.Expired != 1 || s.Canceled != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCancelBeforeFire(t *testing.T) {
	k, m := newMgr()
	fired := false
	e := m.Schedule(time.Millisecond, func() { fired = true })
	if !e.Cancel() {
		t.Fatal("Cancel returned false on pending event")
	}
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Cancel() {
		t.Fatal("double cancel returned true")
	}
	if s := m.Stats(); s.Canceled != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPeriodic(t *testing.T) {
	k, m := newMgr()
	var fires []time.Duration
	var e *Event
	e = m.SchedulePeriodic(time.Millisecond, 2*time.Millisecond, func() {
		fires = append(fires, k.Now())
		if len(fires) == 4 {
			e.Cancel()
		}
	})
	k.RunUntil(time.Second)
	if len(fires) != 4 {
		t.Fatalf("fired %d times: %v", len(fires), fires)
	}
	want := []time.Duration{1, 3, 5, 7}
	for i, w := range want {
		if fires[i] != w*time.Millisecond {
			t.Fatalf("fire %d at %v, want %vms", i, fires[i], w)
		}
	}
	if e.Fired() != 4 {
		t.Fatalf("Fired() = %d", e.Fired())
	}
}

func TestReset(t *testing.T) {
	k, m := newMgr()
	var at time.Duration
	e := m.Schedule(5*time.Millisecond, func() { at = k.Now() })
	k.RunUntil(2 * time.Millisecond)
	e.Reset(10 * time.Millisecond) // now fires at t=12ms
	k.Run()
	if at != 12*time.Millisecond {
		t.Fatalf("reset timer fired at %v, want 12ms", at)
	}
	if s := m.Stats(); s.Expired != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestResetAfterFire(t *testing.T) {
	k, m := newMgr()
	count := 0
	e := m.Schedule(time.Millisecond, func() { count++ })
	k.Run()
	e.Reset(time.Millisecond)
	k.Run()
	if count != 2 {
		t.Fatalf("retransmission-style reuse fired %d times", count)
	}
}

func TestPending(t *testing.T) {
	k, m := newMgr()
	e := m.Schedule(time.Millisecond, func() {})
	if !e.Pending() {
		t.Fatal("not pending after schedule")
	}
	k.Run()
	if e.Pending() {
		t.Fatal("still pending after fire")
	}
}

func TestNonPositivePeriodPanics(t *testing.T) {
	_, m := newMgr()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for period 0")
		}
	}()
	m.SchedulePeriodic(time.Millisecond, 0, func() {})
}

func TestCancelPeriodicStopsFuture(t *testing.T) {
	k, m := newMgr()
	count := 0
	e := m.SchedulePeriodic(time.Millisecond, time.Millisecond, func() { count++ })
	k.RunUntil(3500 * time.Microsecond)
	e.Cancel()
	k.RunUntil(time.Second)
	if count != 3 {
		t.Fatalf("periodic fired %d times after cancel at 3.5ms", count)
	}
}
