// Package obsv is the live observability plane: it exports the UNITES metric
// repository and the flight-recorder trace out of a running node with
// bounded, measured overhead.
//
// The paper's UNITES entity exists so MANTTS can *watch* lightweight
// sessions and adapt them; this package is the presentation half of that
// loop for an operator. Two surfaces:
//
//   - Metric snapshots: the unites.Repository rendered as JSON (the PR-4
//     Snapshot schema) and as Prometheus text exposition, over an embedded
//     HTTP endpoint. Snapshot capture takes only the existing bounded
//     per-recorder locks — there is no global pause, and the simulation
//     never blocks on a scrape.
//   - Trace streaming: a chaser goroutine drains trace.Stream chunks (pushed
//     by the recorder writers at their flush watermark), encodes each chunk
//     exactly once into a length-prefixed binary frame, and fans the frames
//     out to subscribers (HTTP chunked responses, file sinks, the in-process
//     archive). Slow subscribers drop frames — counted, and detectable
//     downstream as a stream gap — rather than ever back-pressuring the
//     data path.
package obsv

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"adaptive/internal/trace"
	"adaptive/internal/unites"
)

// Options configures a Plane. All fields are optional; a zero Options is a
// metrics-less, trace-less plane that still serves /healthz.
type Options struct {
	// Repository is the UNITES metric repository to export.
	Repository *unites.Repository

	// Recorders are the flight recorders (one per shard) to stream. The
	// plane installs its stream on each; install happens in New, before any
	// recording, because the streaming fields are writer-owned afterwards.
	Recorders []*trace.Recorder

	// FlushEvery is the per-recorder flush watermark in records
	// (<= 0 selects a quarter of each ring; capped at half).
	FlushEvery int

	// Queue is the chunk-queue depth between recorder writers and the
	// chaser (<= 0 selects trace.DefaultStreamQueue).
	Queue int

	// SubBuffer is each subscriber's frame-channel depth (<= 0 selects 64).
	SubBuffer int

	// Archive keeps an in-process reassembly of every streamed chunk, for
	// post-run trace.Diff gating against a tailed recording.
	Archive bool

	// Counters are extra process-level gauges exported on the metrics
	// surfaces (e.g. a udpnet provider's dropped-post count), read at
	// scrape time. Keys should be dotted metric names.
	Counters map[string]func() uint64
}

const defaultSubBuffer = 64

// Subscriber receives encoded trace frames. Frames are immutable byte
// slices shared across subscribers; consumers must not modify them.
type Subscriber struct {
	frames  chan []byte
	plane   *Plane
	id      int
	dropped atomic.Uint64
	once    sync.Once
}

// Frames is the subscriber's channel; it closes when the trace stream ends
// or the subscription is canceled.
func (s *Subscriber) Frames() <-chan []byte { return s.frames }

// Dropped returns how many frames this subscriber lost to a full buffer.
// Lost frames surface downstream as a stream gap (chunk start mismatch).
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Cancel detaches the subscriber; its channel is closed.
func (s *Subscriber) Cancel() { s.plane.unsubscribe(s) }

// Plane is one node's observability plane.
type Plane struct {
	opts   Options
	stream *trace.Stream

	mu      sync.Mutex
	subs    map[int]*Subscriber
	nextSub int
	archive *trace.SetBuilder
	archErr error
	subWait chan struct{} // closed when the first subscriber attaches
	server  *http.Server
	addr    string
	done    chan struct{} // closed when the chaser exits
	closed  bool

	scrapes       atomic.Uint64
	framesOut     atomic.Uint64
	subDrops      atomic.Uint64
	recordsSeen   atomic.Uint64
	tracingActive bool
}

// New builds a plane and, when recorders are configured, installs the trace
// stream on them and starts the chaser goroutine. Call before the recorders
// start recording.
func New(opts Options) (*Plane, error) {
	p := &Plane{
		opts:    opts,
		subs:    make(map[int]*Subscriber),
		subWait: make(chan struct{}),
		done:    make(chan struct{}),
	}
	if opts.Archive {
		p.archive = trace.NewSetBuilder()
	}
	if len(opts.Recorders) > 0 {
		p.stream = trace.NewStream(opts.Queue)
		for _, r := range opts.Recorders {
			if err := r.SetStream(p.stream, opts.FlushEvery); err != nil {
				return nil, err
			}
		}
		p.tracingActive = true
		go p.chase()
	} else {
		close(p.done)
	}
	return p, nil
}

// chase is the chaser goroutine: it drains the chunk queue, encodes each
// chunk once, archives it, fans the frame out, and recycles the chunk.
func (p *Plane) chase() {
	defer close(p.done)
	for c := range p.stream.Chunks() {
		p.recordsSeen.Add(uint64(len(c.Records)))
		p.mu.Lock()
		if p.archive != nil && p.archErr == nil {
			p.archErr = p.archive.Add(*c) // copies the records; chunk stays writer-owned
		}
		nsubs := len(p.subs)
		p.mu.Unlock()
		// Encode only when someone is listening: an idle plane's standing
		// cost is the ring copy, not the wire encoding. A subscriber that
		// attaches between this check and the next chunk merely starts one
		// chunk later — indistinguishable from attaching one chunk later.
		var frame []byte
		if nsubs > 0 {
			frame = trace.AppendFrame(make([]byte, 0, trace.FrameSize(len(c.Records))), c)
		}
		p.stream.Recycle(c)
		if frame != nil {
			p.fanout(frame)
		}
	}
	// Stream closed: end every subscriber.
	p.mu.Lock()
	for id, s := range p.subs {
		close(s.frames)
		delete(p.subs, id)
	}
	p.mu.Unlock()
}

// fanout delivers one encoded frame to every subscriber, non-blocking.
func (p *Plane) fanout(frame []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.subs {
		select {
		case s.frames <- frame:
			p.framesOut.Add(1)
		default:
			s.dropped.Add(1)
			p.subDrops.Add(1)
		}
	}
}

// Subscribe attaches a trace-frame subscriber. Returns an error when the
// plane has no trace stream or it has already ended.
func (p *Plane) Subscribe() (*Subscriber, error) {
	if p.stream == nil {
		return nil, fmt.Errorf("obsv: trace streaming not configured")
	}
	buf := p.opts.SubBuffer
	if buf <= 0 {
		buf = defaultSubBuffer
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.done:
		return nil, fmt.Errorf("obsv: trace stream has ended")
	default:
	}
	s := &Subscriber{frames: make(chan []byte, buf), plane: p, id: p.nextSub}
	p.nextSub++
	p.subs[s.id] = s
	select {
	case <-p.subWait:
	default:
		close(p.subWait)
	}
	return s, nil
}

func (p *Plane) unsubscribe(s *Subscriber) {
	s.once.Do(func() {
		p.mu.Lock()
		if _, ok := p.subs[s.id]; ok {
			delete(p.subs, s.id)
			close(s.frames)
		}
		p.mu.Unlock()
	})
}

// WaitSubscriber blocks until at least one trace subscriber has attached
// (ever), or the context ends. Soak runs use it to let a tail client attach
// from record zero before traffic starts.
func (p *Plane) WaitSubscriber(ctx context.Context) error {
	select {
	case <-p.subWait:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FinishTrace flushes every recorder's pending tail into the stream and
// closes it; the chaser drains and ends all subscribers. Call only once the
// recorders' writers have quiesced (e.g. after RunSharded returns). Safe to
// call more than once.
func (p *Plane) FinishTrace() {
	p.mu.Lock()
	if p.closed || p.stream == nil {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, r := range p.opts.Recorders {
		r.Flush()
	}
	p.stream.Close()
	<-p.done
}

// Archive returns the in-process reassembly of the streamed trace. Call
// after FinishTrace; returns an error if archiving was off, a chunk was
// lost to queue overflow, or the stream is still live.
func (p *Plane) Archive() (*trace.Set, error) {
	if p.archive == nil {
		return nil, fmt.Errorf("obsv: archiving not enabled")
	}
	select {
	case <-p.done:
	default:
		return nil, fmt.Errorf("obsv: trace stream still live (call FinishTrace first)")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.archErr != nil {
		return nil, fmt.Errorf("obsv: archive incomplete: %w", p.archErr)
	}
	return p.archive.Set(), nil
}

// RegisterCounters merges extra process-level counters into the exported
// metrics surfaces. This is the post-construction path: a subsystem created
// after the node (e.g. a control-plane controller) publishes its counters on
// an already-running plane. Later registrations win on key collisions. The
// merge is copy-on-write, so an in-flight scrape keeps reading its snapshot.
func (p *Plane) RegisterCounters(extra map[string]func() uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	merged := make(map[string]func() uint64, len(p.opts.Counters)+len(extra))
	for k, v := range p.opts.Counters {
		merged[k] = v
	}
	for k, v := range extra {
		merged[k] = v
	}
	p.opts.Counters = merged
}

// counters returns the current extra-counter map (copy-on-write snapshot).
func (p *Plane) counters() map[string]func() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.opts.Counters
}

// MetricsSnapshot captures the repository (empty snapshot when no
// repository is configured).
func (p *Plane) MetricsSnapshot() unites.Snapshot {
	p.scrapes.Add(1)
	if p.opts.Repository == nil {
		return unites.Snapshot{}
	}
	return p.opts.Repository.Snapshot()
}

// TraceDropped returns chunks lost between writers and chaser (queue
// overflow). Zero means the archive and an attached-from-start subscriber
// saw every record.
func (p *Plane) TraceDropped() uint64 {
	if p.stream == nil {
		return 0
	}
	return p.stream.DroppedChunks()
}

// Serve starts the embedded HTTP endpoint on listen (host:port; port 0
// picks a free one) and returns the bound address.
func (p *Plane) Serve(listen string) (string, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	p.server = &http.Server{Handler: p.Handler(), ReadHeaderTimeout: 10 * time.Second}
	p.addr = ln.Addr().String()
	p.mu.Unlock()
	go p.server.Serve(ln)
	return p.addr, nil
}

// Addr returns the bound endpoint address ("" before Serve).
func (p *Plane) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// Close tears the plane down: trace stream finished (writers must be
// quiesced if tracing was active), HTTP server shut down. Shutdown is
// graceful with a bounded wait — a /trace tail still draining the finished
// stream gets to read its last frames instead of a mid-frame reset — and
// falls back to a hard close if a client won't let go.
func (p *Plane) Close() error {
	p.FinishTrace()
	p.mu.Lock()
	srv := p.server
	p.server = nil
	p.mu.Unlock()
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return srv.Close()
		}
	}
	return nil
}
