package obsv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"adaptive/internal/trace"
	"adaptive/internal/unites"
)

// HTTP surface of the plane:
//
//	GET /metrics       Prometheus text exposition (version 0.0.4)
//	GET /metrics.json  unites.Snapshot JSON plus plane counters
//	GET /trace         live binary trace stream (chunked; see trace.
//	                   WriteStreamHeader for the wire format)
//	GET /healthz       liveness
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	mux.HandleFunc("GET /metrics.json", p.handleMetricsJSON)
	mux.HandleFunc("GET /trace", p.handleTrace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// metricsJSON is the /metrics.json response schema.
type metricsJSON struct {
	Metrics unites.Snapshot   `json:"metrics"`
	Plane   map[string]uint64 `json:"plane"`
}

func (p *Plane) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	doc := metricsJSON{Metrics: p.MetricsSnapshot(), Plane: p.planeCounters()}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// planeCounters collects the plane's own health counters plus any extra
// process counters from Options.Counters, with sorted-stable keys.
func (p *Plane) planeCounters() map[string]uint64 {
	out := map[string]uint64{
		"obsv.scrapes":               p.scrapes.Load(),
		"obsv.trace.frames_out":      p.framesOut.Load(),
		"obsv.trace.subscriber_drop": p.subDrops.Load(),
		"obsv.trace.records":         p.recordsSeen.Load(),
		"obsv.trace.chunks_dropped":  p.TraceDropped(),
	}
	for name, read := range p.counters() {
		out[name] = read()
	}
	return out
}

func (p *Plane) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := p.MetricsSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	writeProm(&b, snap, p.planeCounters())
	w.Write([]byte(b.String()))
}

// promName sanitizes a dotted metric name into a Prometheus identifier
// under the adaptive_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("adaptive_") + len(name))
	b.WriteString("adaptive_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default: // '.', '-', '/', anything else
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeProm renders the snapshot as Prometheus text exposition. Counters
// appear at systemwide scope and per host; distributions are merged across
// every connection per metric name (exact histogram merge via the snapshot
// Restore round trip) and rendered in the summary convention with histogram
// quantiles. Output ordering is fully deterministic.
func writeProm(b *strings.Builder, snap unites.Snapshot, plane map[string]uint64) {
	// Systemwide + per-host counters.
	names := make([]string, 0, len(snap.Systemwide))
	for n := range snap.Systemwide {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n) + "_total"
		fmt.Fprintf(b, "# TYPE %s counter\n", pn)
		fmt.Fprintf(b, "%s %d\n", pn, snap.Systemwide[n])
		for _, h := range snap.Hosts {
			if v, ok := h.Counters[n]; ok {
				fmt.Fprintf(b, "%s{host=%q} %d\n", pn, h.Scope, v)
			}
		}
	}

	// Distributions, merged across connections per metric name. MergeSnapshot
	// is the allocation-free equivalent of Merge(Restore()) — a render over
	// thousands of connections allocates one aggregate per metric name.
	merged := map[string]*unites.Distribution{}
	for _, c := range snap.Connections {
		for name, ds := range c.Dists {
			d := merged[name]
			if d == nil {
				d = unites.NewDistribution()
				merged[name] = d
			}
			ds.MergeSnapshot(d)
		}
	}
	dnames := make([]string, 0, len(merged))
	for n := range merged {
		dnames = append(dnames, n)
	}
	sort.Strings(dnames)
	for _, n := range dnames {
		d := merged[n]
		pn := promName(n)
		fmt.Fprintf(b, "# TYPE %s summary\n", pn)
		for _, q := range [...]struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.95", 0.95}, {"0.99", 0.99}, {"0.999", 0.999}} {
			fmt.Fprintf(b, "%s{quantile=%q} %g\n", pn, q.label, d.HistQuantile(q.q))
		}
		fmt.Fprintf(b, "%s_sum %g\n", pn, d.Sum)
		fmt.Fprintf(b, "%s_count %d\n", pn, d.Count)
	}

	// Plane + extra process counters.
	pnames := make([]string, 0, len(plane))
	for n := range plane {
		pnames = append(pnames, n)
	}
	sort.Strings(pnames)
	for _, n := range pnames {
		pn := promName(n) + "_total"
		fmt.Fprintf(b, "# TYPE %s counter\n", pn)
		fmt.Fprintf(b, "%s %d\n", pn, plane[n])
	}
}

// handleTrace streams trace frames to the client until the run finishes or
// the client goes away. The response body is the ADTS wire format; records
// arrive as the flight recorders cross their flush watermarks.
func (p *Plane) handleTrace(w http.ResponseWriter, r *http.Request) {
	sub, err := p.Subscribe()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer sub.Cancel()
	w.Header().Set("Content-Type", "application/octet-stream")
	flusher, _ := w.(http.Flusher)
	if err := trace.WriteStreamHeader(w); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case frame, ok := <-sub.Frames():
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
