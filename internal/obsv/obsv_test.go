package obsv

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"adaptive/internal/trace"
	"adaptive/internal/unites"
)

func emitN(r *trace.Recorder, n int) {
	for i := 0; i < n; i++ {
		r.Emit(time.Duration(i)*time.Microsecond, trace.KPDUSend, uint32(i), uint64(i), 0, 0)
	}
}

func TestPlaneArchivesAndFansOut(t *testing.T) {
	recs := []*trace.Recorder{trace.NewRecorder(256), trace.NewRecorder(256)}
	recs[1].SetShard(1)
	p, err := New(Options{Recorders: recs, FlushEvery: 32, Archive: true})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := p.Subscribe()
	if err != nil {
		t.Fatal(err)
	}

	// Reassemble the subscriber's frames on the side.
	b := trace.NewSetBuilder()
	done := make(chan error, 1)
	go func() {
		for frame := range sub.Frames() {
			c, rest, err := trace.DecodeFrame(frame)
			if err != nil {
				done <- err
				return
			}
			if len(rest) != 0 {
				done <- errTrailing
				return
			}
			if err := b.Add(c); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	emitN(recs[0], 1000) // wraps the 256-ring: archive must still be complete
	emitN(recs[1], 333)
	p.FinishTrace()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	archive, err := p.Archive()
	if err != nil {
		t.Fatal(err)
	}
	collected := trace.Collect(recs...) // post-mortem view: retained tail only
	if archive.Shards[0].Total != collected.Shards[0].Total {
		t.Fatalf("archive total %d != recorder total %d",
			archive.Shards[0].Total, collected.Shards[0].Total)
	}
	if len(archive.Shards[0].Records) != 1000 {
		t.Fatalf("archive shard 0 has %d records, want all 1000 despite ring wrap",
			len(archive.Shards[0].Records))
	}
	// The subscriber's reassembly must match the archive byte for byte.
	if div, same := trace.Diff(archive, b.Set()); !same {
		t.Fatalf("subscriber reassembly diverges from archive: %+v", div)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("subscriber dropped %d frames", sub.Dropped())
	}
}

var errTrailing = errors.New("frame carried trailing bytes")

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	rec := trace.NewRecorder(1 << 10)
	p, err := New(Options{Recorders: []*trace.Recorder{rec}, FlushEvery: 8, SubBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := p.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	emitN(rec, 512) // 64 chunks into a 1-frame buffer nobody reads
	p.FinishTrace()
	if sub.Dropped() == 0 {
		t.Fatal("expected frame drops on a stalled subscriber")
	}
	// The channel still closed cleanly.
	n := 0
	for range sub.Frames() {
		n++
	}
	if n > 1 {
		t.Fatalf("buffered frames = %d, want <= 1", n)
	}
}

func startedPlane(t *testing.T) (*Plane, []*trace.Recorder, string) {
	t.Helper()
	repo := unites.NewRepository()
	sink := repo.SinkFor("hostA")
	r := sink(7)
	r.Count("pdu.send", 42)
	r.Sample("app.latency", 0.010)
	r.Sample("app.latency", 0.020)
	recs := []*trace.Recorder{trace.NewRecorder(256)}
	p, err := New(Options{
		Repository: repo,
		Recorders:  recs,
		FlushEvery: 16,
		Archive:    true,
		Counters:   map[string]func() uint64{"udpnet.dropped_posts": func() uint64 { return 3 }},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, recs, addr
}

func TestHTTPMetricsSurfaces(t *testing.T) {
	_, _, addr := startedPlane(t)

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE adaptive_pdu_send_total counter",
		"adaptive_pdu_send_total 42",
		`adaptive_pdu_send_total{host="hostA"} 42`,
		"# TYPE adaptive_app_latency summary",
		`adaptive_app_latency{quantile="0.5"}`,
		"adaptive_app_latency_count 2",
		"adaptive_udpnet_dropped_posts_total 3",
		"adaptive_obsv_scrapes_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, text)
		}
	}

	resp, err = http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc metricsJSON
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics.Connections) != 1 || doc.Metrics.Systemwide["pdu.send"] != 42 {
		t.Fatalf("unexpected /metrics.json payload: %+v", doc.Metrics)
	}
	if doc.Plane["udpnet.dropped_posts"] != 3 {
		t.Fatalf("extra counter missing from plane block: %+v", doc.Plane)
	}
	// The exported distribution restores exactly.
	ds, ok := doc.Metrics.Connections[0].Dists["app.latency"]
	if !ok {
		t.Fatal("app.latency distribution missing")
	}
	if got := ds.Restore().HistQuantile(0.5); got != ds.P50 {
		t.Fatalf("restored p50 %g != exported %g", got, ds.P50)
	}
}

func TestHTTPTraceTailMatchesArchive(t *testing.T) {
	p, recs, addr := startedPlane(t)

	resp, err := http.Get("http://" + addr + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	tail := make(chan *trace.Set, 1)
	errc := make(chan error, 1)
	go func() {
		fr, err := trace.NewFrameReader(resp.Body)
		if err != nil {
			errc <- err
			return
		}
		b := trace.NewSetBuilder()
		for {
			c, err := fr.Next()
			if err == io.EOF {
				tail <- b.Set()
				return
			}
			if err != nil {
				errc <- err
				return
			}
			if err := b.Add(c); err != nil {
				errc <- err
				return
			}
		}
	}()

	// Let the HTTP subscriber attach before emitting so it sees record 0.
	if err := p.WaitSubscriber(t.Context()); err != nil {
		t.Fatal(err)
	}
	emitN(recs[0], 700)
	p.FinishTrace()

	var tailSet *trace.Set
	select {
	case tailSet = <-tail:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("tail did not finish")
	}
	archive, err := p.Archive()
	if err != nil {
		t.Fatal(err)
	}
	if div, same := trace.Diff(archive, tailSet); !same {
		t.Fatalf("HTTP tail diverges from archive: %+v", div)
	}
	if tailSet.Len() != 700 {
		t.Fatalf("tail has %d records, want 700", tailSet.Len())
	}
}

func TestSubscribeAfterEndFails(t *testing.T) {
	rec := trace.NewRecorder(64)
	p, err := New(Options{Recorders: []*trace.Recorder{rec}})
	if err != nil {
		t.Fatal(err)
	}
	p.FinishTrace()
	if _, err := p.Subscribe(); err == nil {
		t.Fatal("Subscribe succeeded after FinishTrace")
	}
	// A plane with no recorders has no stream at all.
	p2, _ := New(Options{})
	if _, err := p2.Subscribe(); err == nil {
		t.Fatal("Subscribe succeeded with no trace stream")
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"pdu.send":       "adaptive_pdu_send",
		"rel/retransmit": "adaptive_rel_retransmit",
		"a-b.c":          "adaptive_a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestArchiveErrors(t *testing.T) {
	p, _ := New(Options{})
	if _, err := p.Archive(); err == nil {
		t.Fatal("Archive succeeded with archiving off")
	}
	rec := trace.NewRecorder(64)
	p2, err := New(Options{Recorders: []*trace.Recorder{rec}, Archive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Archive(); err == nil {
		t.Fatal("Archive succeeded while stream still live")
	}
	p2.FinishTrace()
	if _, err := p2.Archive(); err != nil {
		t.Fatal(err)
	}
}
