package adaptive_test

import (
	"bytes"
	"testing"
	"time"

	"adaptive"
	"adaptive/internal/mechanism"
	"adaptive/internal/netsim"
)

// TestAdoptedSessionSurvivesSlowHandoffKeepalive is the regression test for
// the keepalive-vs-migration interaction: a session with dead-peer detection
// enabled migrates through a handoff that takes longer than DeadInterval.
// The adopted session's idle clock must be re-based when egress resumes —
// the silence accumulated while the session was frozen (probes suppressed,
// peer still routed to the old owner) is not evidence the peer died. Before
// the fix, the first keepalive tick after ResumeEgress measured idle time
// from the moment of adoption and tore the live session down with a spurious
// "peer dead" abort.
func TestAdoptedSessionSurvivesSlowHandoffKeepalive(t *testing.T) {
	k, na, nb, np := simTriangle(t, netsim.LinkConfig{
		Bandwidth: 20e6, PropDelay: 2 * time.Millisecond, MTU: 1500,
	})

	var got []byte
	var peer *adaptive.Conn
	np.Listen(80, nil, func(c *adaptive.Conn) {
		peer = c
		c.OnReceive(func(data []byte, eom bool) { got = append(got, data...) })
	})

	// The peer side keeps keepalive off (the dialing spec has none), so the
	// handoff window below is genuinely silent toward the new owner; only
	// the migrating session runs dead-peer detection.
	conn, err := na.DialSpec(mechanism.DefaultSpec(), np.Addr(), 1000, 80)
	if err != nil {
		t.Fatal(err)
	}
	const keepalive = 20 * time.Millisecond
	const dead = 3 * keepalive
	if err := conn.Reconfigure(func(s *adaptive.Spec) {
		s.KeepaliveInterval = keepalive
		s.DeadInterval = dead
	}); err != nil {
		t.Fatal(err)
	}

	phase1 := bytes.Repeat([]byte("keepalive-migration-"), 4000)
	phase2 := bytes.Repeat([]byte("post-adoption-data!!"), 4000)
	if err := conn.Send(phase1); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(20 * time.Millisecond)
	if peer == nil {
		t.Fatal("peer connection not accepted")
	}

	// Hand the session off by hand so the handoff duration is under test
	// control: each leg of the migration takes longer than DeadInterval.
	sess := conn.Session()
	sess.FreezeEgress()
	h := sess.ExportHandoff()
	sess.Retire()

	// Slow record transfer: the frozen source answers probes but emits no
	// data, the target has not adopted yet.
	k.RunUntil(k.Now() + 5*dead)

	adopted, err := nb.Stack().AdoptSession(h)
	if err != nil {
		t.Fatal(err)
	}
	// The routing flip reaches the peer; the new owner's egress stays
	// frozen until the flip is confirmed.
	peer.Session().RebindPeer(nb.Addr())

	// Slow flip confirmation: the adopted session sits frozen, hearing
	// nothing, for well past DeadInterval.
	k.RunUntil(k.Now() + 5*dead)

	adopted.ResumeEgress()
	k.RunUntil(k.Now() + 10*time.Second)

	if adopted.Closed() {
		t.Fatal("adopted session tore down after a slow handoff (spurious dead-peer)")
	}
	if err := adopted.Send(phase2); err != nil {
		t.Fatalf("Send on adopted session after slow handoff: %v", err)
	}
	k.RunUntil(k.Now() + 30*time.Second)

	want := append(append([]byte(nil), phase1...), phase2...)
	if !bytes.Equal(got, want) {
		t.Fatalf("delivered %d bytes, want %d (first divergence at %d)",
			len(got), len(want), firstDiff(got, want))
	}
}
