package adaptive

import (
	"context"
	"errors"
	"net/http"
	"sync"

	"adaptive/internal/obsv"
	"adaptive/internal/trace"
	"adaptive/internal/unites"
)

var (
	errObsvDisabled  = errors.New("adaptive: observability not configured (WithObservability)")
	errFrameTrailing = errors.New("adaptive: trace frame carried trailing bytes")
)

// Observability type vocabulary. The redesigned surface keeps internal
// packages out of application signatures: applications configure a plain
// Observe struct and read back snapshot/stream values.
type (
	// MetricsRepository is the UNITES metric repository. Supply one in
	// Observe.Repository to share it across nodes (sharded experiments);
	// leave it nil and the node creates its own.
	MetricsRepository = unites.Repository
	// MetricsSnapshot is a point-in-time export of the repository at
	// systemwide, per-host, and per-connection scope.
	MetricsSnapshot = unites.Snapshot
	// FlightRecorder is the fixed-size-record trace ring (advanced use:
	// sharing one recorder between a node and a simulation kernel).
	FlightRecorder = trace.Recorder
	// TraceRecord is one 38-byte flight-recorder record.
	TraceRecord = trace.Record
	// TraceChunk is a contiguous run of streamed trace records.
	TraceChunk = trace.Chunk
	// TraceSet is a complete assembled trace (diffable, writable).
	TraceSet = trace.Set
)

// Observe configures a node's observability plane: what is collected
// (metrics repository, flight recorder), how densely (sampling, ring and
// flush sizing), and where it is exported (embedded HTTP endpoint). The
// zero value collects metrics into a private repository with tracing off.
type Observe struct {
	// Listen, when non-empty, serves the observability HTTP endpoint on
	// this address ("127.0.0.1:0" picks a free port; read it back from
	// Observability().Addr()). Endpoints: /metrics (Prometheus text),
	// /metrics.json, /trace (live binary stream), /healthz.
	Listen string

	// Repository receives UNITES instrumentation for every session on the
	// node. Nil allocates a per-node repository.
	Repository *MetricsRepository

	// TraceBuffer, when > 0, enables flight recording into a node-owned
	// ring of at least this many records (rounded up to a power of two).
	TraceBuffer int

	// TraceSample keeps one in N keyed data-path trace events (N a power
	// of two; 0 or 1 keeps all). Structural events are never sampled out.
	TraceSample uint64

	// TraceFlush is the streaming flush watermark in records: the recorder
	// hands records to the trace stream each time this many are pending.
	// 0 selects a quarter of the ring; capped at half the ring.
	TraceFlush int

	// TraceQueue is the chunk-queue depth between the recorder and the
	// streaming chaser (0 selects the default). The queue never blocks the
	// data path; overflow is counted and surfaces as a tail gap.
	TraceQueue int

	// TraceArchive keeps an in-process reassembly of everything streamed,
	// retrievable as a TraceSet for post-run diffing against a live tail.
	TraceArchive bool

	// Tracer, when set, records into this externally-owned recorder
	// instead of a node-owned ring. The node does not install streaming on
	// it (the owner controls collection); TraceBuffer/TraceSample/
	// TraceFlush are ignored. Sharded experiments that collect their own
	// per-shard recorders use this.
	Tracer *FlightRecorder

	// Counters adds process-level counters to the exported surfaces (e.g.
	// a udpnet provider's dropped-post count), read at scrape time.
	Counters map[string]func() uint64
}

// WithObservability configures the node's observability plane.
func WithObservability(cfg Observe) Option {
	return func(o *Options) { o.Observe = &cfg }
}

// Observability is a node's handle on its observability plane. Obtain it
// from Node.Observability(); it is always non-nil, with Enabled reporting
// whether a plane was configured.
type Observability struct {
	plane *obsv.Plane
	repo  *MetricsRepository
	rec   *FlightRecorder
	owned bool // recorder is node-owned (streaming installed)
}

// Enabled reports whether an observability plane was configured.
func (o *Observability) Enabled() bool { return o.plane != nil }

// MetricsSnapshot captures the node's UNITES repository. Snapshot capture
// takes only bounded per-recorder locks; it never pauses the data path.
func (o *Observability) MetricsSnapshot() MetricsSnapshot {
	if o.plane == nil {
		return MetricsSnapshot{}
	}
	return o.plane.MetricsSnapshot()
}

// Repository returns the repository the node records into (nil when
// observability is unconfigured).
func (o *Observability) Repository() *MetricsRepository { return o.repo }

// Recorder returns the node's flight recorder (nil when tracing is off).
func (o *Observability) Recorder() *FlightRecorder { return o.rec }

// Addr returns the HTTP endpoint's bound address ("" when not serving).
func (o *Observability) Addr() string {
	if o.plane == nil {
		return ""
	}
	return o.plane.Addr()
}

// Handler returns the observability HTTP handler for embedding into an
// application's own server (nil when observability is unconfigured).
func (o *Observability) Handler() http.Handler {
	if o.plane == nil {
		return nil
	}
	return o.plane.Handler()
}

// RegisterCounters merges extra process-level counters into the plane's
// exported metrics surfaces after construction (e.g. a ControlPlane
// publishing adaptive_ctl_* on every enrolled node). No-op when
// observability is unconfigured. Later registrations win on key collisions.
func (o *Observability) RegisterCounters(extra map[string]func() uint64) {
	if o.plane != nil {
		o.plane.RegisterCounters(extra)
	}
}

// TraceTail attaches a live trace subscription. Attach before traffic
// starts to capture from record zero (a later attach surfaces as a leading
// gap when reassembling). The tail ends when the context is canceled, when
// Close is called, or when the node finishes its trace.
func (o *Observability) TraceTail(ctx context.Context) (*TraceTail, error) {
	if o.plane == nil {
		return nil, errObsvDisabled
	}
	sub, err := o.plane.Subscribe()
	if err != nil {
		return nil, err
	}
	t := &TraceTail{sub: sub, closed: make(chan struct{})}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				sub.Cancel()
			case <-t.closed:
			}
		}()
	}
	return t, nil
}

// FlushTrace pushes the recorder's pending tail into the stream and ends
// it; attached tails observe end-of-stream. Call only when the node's
// event loop has quiesced (simulation drained, or provider closed).
func (o *Observability) FlushTrace() {
	if o.plane != nil {
		o.plane.FinishTrace()
	}
}

// TraceArchive returns the in-process reassembly of the streamed trace
// (requires Observe.TraceArchive and a prior FlushTrace).
func (o *Observability) TraceArchive() (*TraceSet, error) {
	if o.plane == nil {
		return nil, errObsvDisabled
	}
	return o.plane.Archive()
}

// Close tears the plane down (flushes the trace, stops the HTTP server).
func (o *Observability) Close() error {
	if o.plane == nil {
		return nil
	}
	return o.plane.Close()
}

// TraceTail is a live trace subscription: a sequence of TraceChunks in
// stream order. Feed them to a reassembler or count them; chunks from one
// shard arrive start-contiguous unless frames were dropped (Dropped).
type TraceTail struct {
	sub    *obsv.Subscriber
	closed chan struct{}
	once   sync.Once
	err    error
}

// Next returns the next chunk; ok is false at end of stream, after Close,
// or on a decode error (check Err).
func (t *TraceTail) Next() (TraceChunk, bool) {
	frame, ok := <-t.sub.Frames()
	if !ok {
		return TraceChunk{}, false
	}
	c, rest, err := trace.DecodeFrame(frame)
	if err == nil && len(rest) != 0 {
		err = errFrameTrailing
	}
	if err != nil {
		t.err = err
		t.Close()
		return TraceChunk{}, false
	}
	return c, true
}

// Err returns the decode error that ended the tail, if any.
func (t *TraceTail) Err() error { return t.err }

// Dropped returns how many frames this tail lost to a full buffer (each
// surfaces as a chunk-start gap).
func (t *TraceTail) Dropped() uint64 { return t.sub.Dropped() }

// Close detaches the tail. Safe to call multiple times.
func (t *TraceTail) Close() {
	t.once.Do(func() {
		t.sub.Cancel()
		close(t.closed)
	})
}
