package adaptive_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"adaptive"
	"adaptive/internal/netsim"
	"adaptive/internal/sim"
	"adaptive/internal/trace"
	"adaptive/internal/unites"
)

// observedPair builds a sim pair whose dialing node has a full observability
// plane: node-owned flight recorder (also wired into the kernel), archive,
// and HTTP endpoint.
func observedPair(t *testing.T) (*sim.Kernel, *adaptive.Node, *adaptive.Node) {
	t.Helper()
	link := netsim.LinkConfig{Bandwidth: 10e6, PropDelay: time.Millisecond, MTU: 1500}
	k := sim.NewKernel(3)
	k.SetEventLimit(50_000_000)
	net := netsim.New(k)
	ha, hb := net.AddHost(), net.AddHost()
	ab, ba := net.NewLink(link), net.NewLink(link)
	net.SetRoute(ha.ID(), hb.ID(), ab)
	net.SetRoute(hb.ID(), ha.ID(), ba)
	na, err := adaptive.NewNode(
		adaptive.WithProvider(net), adaptive.WithHost(ha.ID()),
		adaptive.WithSeed(1), adaptive.WithName("a"),
		adaptive.WithObservability(adaptive.Observe{
			Listen:       "127.0.0.1:0",
			TraceBuffer:  1 << 12,
			TraceFlush:   256,
			TraceArchive: true,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { na.Close() })
	k.SetTracer(na.Observability().Recorder())
	nb, err := adaptive.NewNode(adaptive.WithProvider(net), adaptive.WithHost(hb.ID()),
		adaptive.WithSeed(2), adaptive.WithName("b"))
	if err != nil {
		t.Fatal(err)
	}
	return k, na, nb
}

func TestObservabilityEndToEnd(t *testing.T) {
	k, na, nb := observedPair(t)
	obs := na.Observability()
	if !obs.Enabled() {
		t.Fatal("plane not enabled")
	}

	// Attach a live tail before any traffic so it sees record zero.
	tail, err := obs.TraceTail(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	builder := trace.NewSetBuilder()
	tailDone := make(chan error, 1)
	go func() {
		for {
			c, ok := tail.Next()
			if !ok {
				tailDone <- tail.Err()
				return
			}
			if err := builder.Add(c); err != nil {
				tailDone <- err
				return
			}
		}
	}()

	var got []byte
	nb.Listen(80, nil, func(c *adaptive.Conn) {
		c.OnReceive(func(data []byte, eom bool) { got = append(got, data...) })
	})
	conn, err := na.Dial(&adaptive.ACD{
		Participants: []adaptive.Addr{nb.Addr()},
		RemotePort:   80,
		Quant:        adaptive.QuantQoS{AvgThroughputBps: 5e6},
		Qual:         adaptive.QualQoS{Ordered: true},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("observe"), 10000)
	conn.Send(payload)
	k.RunUntil(30 * time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d of %d bytes", len(got), len(payload))
	}

	// Metrics surface: snapshot and HTTP endpoint agree.
	snap := obs.MetricsSnapshot()
	if snap.Systemwide["pdu.sent"] == 0 {
		t.Fatalf("snapshot saw no pdu.sent: %v", snap.Systemwide)
	}
	resp, err := http.Get("http://" + obs.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "adaptive_pdu_sent_total") {
		t.Fatalf("/metrics missing pdu.sent counter:\n%s", body)
	}

	// Trace surface: tail reassembly is Diff-identical to the archive and
	// to post-mortem collection from the recorder.
	obs.FlushTrace()
	if err := <-tailDone; err != nil {
		t.Fatal(err)
	}
	if tail.Dropped() != 0 {
		t.Fatalf("tail dropped %d frames", tail.Dropped())
	}
	archive, err := obs.TraceArchive()
	if err != nil {
		t.Fatal(err)
	}
	if div, same := trace.Diff(archive, builder.Set()); !same {
		t.Fatalf("tail diverges from archive: %+v", div)
	}
	collected := trace.Collect(obs.Recorder())
	if archive.Shards[0].Total != collected.Shards[0].Total {
		t.Fatalf("archive total %d != recorder total %d",
			archive.Shards[0].Total, collected.Shards[0].Total)
	}
	if archive.Len() == 0 {
		t.Fatal("empty archive")
	}
}

func TestTraceTailContextCancel(t *testing.T) {
	_, na, _ := observedPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	tail, err := na.Observability().TraceTail(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.After(10 * time.Second)
	for {
		if _, ok := tail.Next(); !ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("tail did not end after context cancel")
		default:
		}
	}
	if tail.Err() != nil {
		t.Fatalf("unexpected tail error: %v", tail.Err())
	}
}

func TestDeprecatedOptionsFoldIntoObservability(t *testing.T) {
	link := netsim.LinkConfig{Bandwidth: 10e6, PropDelay: time.Millisecond, MTU: 1500}
	k := sim.NewKernel(7)
	net := netsim.New(k)
	h := net.AddHost()
	l := net.NewLink(link)
	net.SetRoute(h.ID(), h.ID(), l)

	repo := unites.NewRepository()
	rec := trace.NewRecorder(1 << 10)
	n, err := adaptive.NewNode(
		adaptive.WithProvider(net), adaptive.WithHost(h.ID()), adaptive.WithName("legacy"),
		adaptive.WithMetrics(repo), adaptive.WithTracer(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	obs := n.Observability()
	if !obs.Enabled() {
		t.Fatal("legacy options did not enable the plane")
	}
	if obs.Repository() != repo {
		t.Fatal("legacy repository not adopted")
	}
	if obs.Recorder() != rec {
		t.Fatal("legacy tracer not adopted")
	}
	// The node does not install streaming on an externally-owned recorder.
	if _, err := obs.TraceTail(context.Background()); err == nil {
		t.Fatal("TraceTail succeeded on an external recorder")
	}

	// A node with no observability at all still answers, disabled.
	h2 := net.AddHost()
	bare, err := adaptive.NewNode(adaptive.WithProvider(net), adaptive.WithHost(h2.ID()))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Observability() == nil || bare.Observability().Enabled() {
		t.Fatal("bare node observability should be non-nil and disabled")
	}
	if bare.Observability().Addr() != "" {
		t.Fatal("bare node has an endpoint address")
	}
	if err := bare.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSubscribeCoexistsWithLegacyHook(t *testing.T) {
	k, na, nb := observedPair(t)
	nb.Listen(80, nil, func(c *adaptive.Conn) { c.OnReceive(func([]byte, bool) {}) })
	var legacy, subbed int
	na.OnNotification(func(_ uint32, _ adaptive.Notification) { legacy++ })
	cancel := na.Subscribe(func(_ uint32, _ adaptive.Notification) { subbed++ })
	conn, _ := na.Dial(&adaptive.ACD{
		Participants: []adaptive.Addr{nb.Addr()},
		RemotePort:   80,
		Qual:         adaptive.QualQoS{Ordered: true},
	}, nil)
	conn.Send([]byte("x"))
	k.RunUntil(time.Second)
	if legacy == 0 || subbed != legacy {
		t.Fatalf("listeners diverge: legacy=%d subscribed=%d", legacy, subbed)
	}
	cancel()
	before := subbed
	conn.Close()
	k.RunUntil(10 * time.Second)
	if subbed != before {
		t.Fatal("canceled subscriber kept firing")
	}
	if legacy == before {
		t.Fatal("legacy hook missed close notifications")
	}
}

func TestNodeProbeContext(t *testing.T) {
	k, na, nb := observedPair(t)
	stop := na.ProbeContext(context.Background(), nb.Addr().Host, 20*time.Millisecond)
	k.RunUntil(500 * time.Millisecond)
	stop()
	ns := na.Entity().NetState().Path(nb.Addr().Host)
	if ns.ProbesSent == 0 {
		t.Fatal("no probes sent")
	}
	k.RunUntil(2 * time.Second)
	if after := na.Entity().NetState().Path(nb.Addr().Host); after.ProbesSent != ns.ProbesSent {
		t.Fatal("probing survived stop()")
	}
}
