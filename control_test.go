package adaptive_test

import (
	"bytes"
	"testing"
	"time"

	"adaptive"
	"adaptive/internal/mechanism"
	"adaptive/internal/netsim"
	"adaptive/internal/sim"
	"adaptive/internal/wire"
)

// simTriangle builds three fully meshed hosts: A (dialer/source), B
// (migration target), P (transfer peer).
func simTriangle(t *testing.T, link netsim.LinkConfig) (*sim.Kernel, *adaptive.Node, *adaptive.Node, *adaptive.Node) {
	t.Helper()
	k := sim.NewKernel(3)
	k.SetEventLimit(50_000_000)
	net := netsim.New(k)
	hosts := []*netsim.Host{net.AddHost(), net.AddHost(), net.AddHost()}
	for i := range hosts {
		for j := range hosts {
			if i == j {
				continue
			}
			l := net.NewLink(link)
			net.SetRoute(hosts[i].ID(), hosts[j].ID(), l)
		}
	}
	mk := func(i int, name string) *adaptive.Node {
		n, err := adaptive.NewNode(adaptive.WithProvider(net), adaptive.WithHost(hosts[i].ID()),
			adaptive.WithSeed(int64(i+1)), adaptive.WithName(name))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	return k, mk(0, "a"), mk(1, "b"), mk(2, "p")
}

// TestMigrateSessionMidStream is the control-plane end-to-end: a live
// session migrates host-to-host mid-transfer with zero app-stream divergence,
// and a stale-epoch sender is provably fenced afterwards.
func TestMigrateSessionMidStream(t *testing.T) {
	k, na, nb, np := simTriangle(t, netsim.LinkConfig{Bandwidth: 20e6, PropDelay: 2 * time.Millisecond, MTU: 1500})

	cp := adaptive.NewControlPlane()
	var adopted *adaptive.Conn
	cp.OnAdopt = func(c *adaptive.Conn) { adopted = c }
	for _, n := range []*adaptive.Node{na, nb, np} {
		if err := cp.Enroll(n, 10); err != nil {
			t.Fatal(err)
		}
	}

	var got []byte
	np.Listen(80, nil, func(c *adaptive.Conn) {
		c.OnReceive(func(data []byte, eom bool) { got = append(got, data...) })
	})

	conn, err := na.Dial(&adaptive.ACD{
		Participants: []adaptive.Addr{np.Addr()},
		RemotePort:   80,
		Quant:        adaptive.QuantQoS{AvgThroughputBps: 5e6},
		Qual:         adaptive.QualQoS{Ordered: true},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Place(conn); err != nil {
		t.Fatal(err)
	}

	phase1 := bytes.Repeat([]byte("before-migration-"), 4000)
	phase2 := bytes.Repeat([]byte("after-migration!!"), 4000)
	if err := conn.Send(phase1); err != nil {
		t.Fatal(err)
	}
	// Run just long enough that phase 1 is mid-flight: queued segments,
	// unacked PDUs, and reassembly state all travel in the record.
	k.RunUntil(20 * time.Millisecond)

	m, err := cp.MigrateSession(conn, nb.Addr().Host)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(2 * time.Second)
	select {
	case <-m.Done():
	default:
		t.Fatal("migration did not complete")
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	if m.Conn() == nil || m.Conn() != adopted {
		t.Fatalf("migration conn %p != adopted %p", m.Conn(), adopted)
	}

	// The source handle is dead; the adopted one carries the stream on.
	if err := conn.Send([]byte("stale")); err != adaptive.ErrMigrated {
		t.Fatalf("source Send after migration = %v, want ErrMigrated", err)
	}
	if err := adopted.Send(phase2); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(60 * time.Second)

	want := append(append([]byte(nil), phase1...), phase2...)
	if !bytes.Equal(got, want) {
		t.Fatalf("delivered %d bytes, want %d (first divergence at %d)",
			len(got), len(want), firstDiff(got, want))
	}

	// Lease flipped exactly once.
	if host, epoch, ok := cp.Owner(conn.ConnID()); !ok || host != nb.Addr().Host || epoch != 2 {
		t.Fatalf("Owner = %v/%d/%v, want %v/2/true", host, epoch, ok, nb.Addr().Host)
	}
	st := cp.Status()
	if st.Migrations != 1 || st.MigrationsFailed != 0 {
		t.Fatalf("status %+v", st)
	}

	// Stale-epoch sender: replay a data PDU for this connection from the old
	// owner's stack. The peer's fence must reject it (counted, not
	// delivered).
	deliveredBefore := len(got)
	p := wire.GetPDU()
	p.Header = wire.Header{
		Type:    wire.TData,
		ConnID:  conn.ConnID(),
		SrcPort: conn.Session().LocalPort(),
		DstPort: 80,
		Seq:     1, // long-acked: even if it got through it would dedup
	}
	if err := wire.EncodeTo(p, wire.CkCRC32, func(pkt []byte) error {
		return na.Stack().Transmit(pkt, np.Addr())
	}); err != nil {
		t.Fatal(err)
	}
	wire.PutPDU(p)
	k.RunUntil(65 * time.Second)
	if fenced := np.Stack().Stats().FencedPDUs; fenced == 0 {
		t.Fatal("stale-epoch sender was not fenced")
	}
	if len(got) != deliveredBefore {
		t.Fatal("stale-epoch replay changed the delivered stream")
	}
}

// TestMigrateRollbackOnDeadTarget drives the failure path: the target host's
// agent is unreachable (no route), retries exhaust, and the source resumes
// with its transfer state intact — the stream still completes on the old
// placement.
func TestMigrateRollbackOnDeadTarget(t *testing.T) {
	k := sim.NewKernel(3)
	k.SetEventLimit(50_000_000)
	net := netsim.New(k)
	ha, hb, hp := net.AddHost(), net.AddHost(), net.AddHost()
	link := netsim.LinkConfig{Bandwidth: 20e6, PropDelay: 2 * time.Millisecond, MTU: 1500}
	// A<->P routed; B is enrolled but unreachable (no routes at all).
	ab, ba := net.NewLink(link), net.NewLink(link)
	net.SetRoute(ha.ID(), hp.ID(), ab)
	net.SetRoute(hp.ID(), ha.ID(), ba)

	na, err := adaptive.NewNode(adaptive.WithProvider(net), adaptive.WithHost(ha.ID()), adaptive.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := adaptive.NewNode(adaptive.WithProvider(net), adaptive.WithHost(hb.ID()), adaptive.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	np, err := adaptive.NewNode(adaptive.WithProvider(net), adaptive.WithHost(hp.ID()), adaptive.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}

	cp := adaptive.NewControlPlane()
	for _, n := range []*adaptive.Node{na, nb, np} {
		if err := cp.Enroll(n, 0); err != nil {
			t.Fatal(err)
		}
	}

	var got []byte
	np.Listen(80, nil, func(c *adaptive.Conn) {
		c.OnReceive(func(data []byte, eom bool) { got = append(got, data...) })
	})
	conn, err := na.Dial(&adaptive.ACD{
		Participants: []adaptive.Addr{np.Addr()},
		RemotePort:   80,
		Qual:         adaptive.QualQoS{Ordered: true},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Place(conn); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("rollback-payload-"), 3000)
	if err := conn.Send(payload); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(20 * time.Millisecond)

	m, err := cp.MigrateSession(conn, nb.Addr().Host)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(60 * time.Second)
	select {
	case <-m.Done():
	default:
		t.Fatal("migration neither completed nor rolled back")
	}
	if m.Err() == nil {
		t.Fatal("migration to an unreachable host should fail")
	}
	if host, _, _ := cp.Owner(conn.ConnID()); host != na.Addr().Host {
		t.Fatalf("lease moved to %v despite rollback", host)
	}
	if st := cp.Status(); st.MigrationsFailed != 1 || st.Migrations != 0 {
		t.Fatalf("status %+v", st)
	}
	// The source resumed: the stream completes on the old placement.
	k.RunUntil(120 * time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d of %d bytes after rollback (first divergence at %d)",
			len(got), len(payload), firstDiff(got, payload))
	}
	if err := conn.Send([]byte("more")); err != nil {
		t.Fatalf("source Send after rollback: %v", err)
	}
}

// TestMigrateUnderLoss drives a cross-host handoff over lossy links with an
// explicit recovery mechanism per row: the handoff record must carry live
// retransmission state (non-empty unacked map) and the migrated stream must
// still arrive with no lost or duplicated sequence — byte-identical.
func TestMigrateUnderLoss(t *testing.T) {
	cases := []struct {
		name     string
		recovery adaptive.RecoveryKind
	}{
		{"SelectiveRepeat", adaptive.RecoverySelectiveRepeat},
		{"GoBackN", adaptive.RecoveryGoBackN},
		{"FECHybrid", adaptive.RecoveryFECHybrid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, na, nb, np := simTriangle(t, netsim.LinkConfig{
				Bandwidth: 10e6, PropDelay: 2 * time.Millisecond, MTU: 1500,
				DropRate: 0.05,
			})
			cp := adaptive.NewControlPlane()
			for _, n := range []*adaptive.Node{na, nb, np} {
				if err := cp.Enroll(n, 0); err != nil {
					t.Fatal(err)
				}
			}

			var got []byte
			np.Listen(80, nil, func(c *adaptive.Conn) {
				c.OnReceive(func(data []byte, eom bool) { got = append(got, data...) })
			})

			spec := mechanism.DefaultSpec()
			spec.Recovery = tc.recovery
			conn, err := na.DialSpec(spec, np.Addr(), 1000, 80)
			if err != nil {
				t.Fatal(err)
			}
			if err := cp.Place(conn); err != nil {
				t.Fatal(err)
			}
			phase1 := bytes.Repeat([]byte(tc.name+"/one-"), 30000)
			phase2 := bytes.Repeat([]byte(tc.name+"/two-"), 30000)
			if err := conn.Send(phase1); err != nil {
				t.Fatal(err)
			}
			k.RunUntil(60 * time.Millisecond)

			// Mid-flight under 5% loss the sender must be carrying live
			// retransmission state into the record.
			if h := conn.Session().ExportHandoff(); len(h.Unacked) == 0 {
				t.Fatal("handoff exported with an empty unacked map; loss test proves nothing")
			}

			m, err := cp.MigrateSession(conn, nb.Addr().Host)
			if err != nil {
				t.Fatal(err)
			}
			k.RunUntil(30 * time.Second)
			select {
			case <-m.Done():
			default:
				t.Fatal("migration did not complete under loss")
			}
			if m.Err() != nil {
				t.Fatal(m.Err())
			}
			if err := m.Conn().Send(phase2); err != nil {
				t.Fatal(err)
			}
			k.RunUntil(300 * time.Second)

			want := append(append([]byte(nil), phase1...), phase2...)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: delivered %d bytes, want %d (first divergence at %d)",
					tc.name, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
