// Package adaptive is a Go implementation of ADAPTIVE — "A Dynamically
// Assembled Protocol Transformation, Integration, and Validation
// Environment" (Schmidt, Box, Suda; HPDC 1992): a flexible and adaptive
// transport system that configures lightweight protocol sessions from
// application quality-of-service requirements and network characteristics,
// and reconfigures them at run time under policy control.
//
// The three subsystems of the paper map onto this module as follows:
//
//   - MANTTS (Map Applications and Networks To Transport Systems) —
//     internal/mantts: ACD (Table 2), Transport Service Classes (Table 1),
//     the three-stage transformation, QoS negotiation, the network state
//     descriptor, and the TSA policy engine.
//   - TKO (Transport Kernel Objects) — internal/tko, internal/session and
//     the mechanism packages: the mechanism repository, synthesizer,
//     template cache, and the live session with segue.
//   - UNITES (UNIform Transport Evaluation Subsystem) — internal/unites:
//     blackbox/whitebox metric collection and the metric repository.
//
// A Node is one host's complete ADAPTIVE instance. Applications describe
// what they need in an ACD and call Dial; MANTTS chooses the policies
// (Stage I), derives the mechanisms (Stage II), and TKO synthesizes the
// session (Stage III):
//
//	node, _ := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(hostID))
//	conn, _ := node.Dial(&adaptive.ACD{
//	    Participants: []adaptive.Addr{peer},
//	    RemotePort:   80,
//	    Quant:        adaptive.QuantQoS{AvgThroughputBps: 2e6, MaxLatency: 100 * time.Millisecond},
//	    Qual:         adaptive.QualQoS{Ordered: true},
//	}, nil)
//	conn.OnReceive(func(data []byte, eom bool) { ... })
//	conn.Send(payload)
//
// The package runs unmodified over two network providers: the deterministic
// discrete-event simulator (internal/netsim, used by every experiment) and
// real UDP sockets (internal/udpnet).
package adaptive

import (
	"context"
	"fmt"
	"time"

	"adaptive/internal/arbiter"
	"adaptive/internal/mantts"
	"adaptive/internal/mechanism"
	"adaptive/internal/netapi"
	"adaptive/internal/obsv"
	"adaptive/internal/protograph"
	"adaptive/internal/session"
	"adaptive/internal/tko"
	"adaptive/internal/trace"
	"adaptive/internal/unites"
)

// Re-exported core types: the public vocabulary of the system.
type (
	// Addr is a transport address (host or multicast group + port).
	Addr = netapi.Addr
	// HostID identifies a host or multicast group.
	HostID = netapi.HostID
	// Provider is a pluggable network environment.
	Provider = netapi.Provider

	// ACD is the ADAPTIVE Communication Descriptor (paper Table 2).
	ACD = mantts.ACD
	// QuantQoS holds quantitative QoS parameters.
	QuantQoS = mantts.QuantQoS
	// QualQoS holds qualitative QoS parameters.
	QualQoS = mantts.QualQoS
	// TMC is the Transport Measurement Component.
	TMC = mantts.TMC
	// Rule is a TSA <condition, action> pair.
	Rule = mantts.Rule
	// Cond is a TSA condition.
	Cond = mantts.Cond
	// Action is a TSA action.
	Action = mantts.Action
	// TSC is a Transport Service Class (paper Table 1).
	TSC = mantts.TSC
	// StaticPathInfo seeds the network state descriptor with a-priori
	// link knowledge (Node.SeedPath).
	StaticPathInfo = mantts.StaticPathInfo

	// Spec is a Session Configuration Specification (SCS).
	Spec = mechanism.Spec
	// RecoveryKind, ConnKind, WindowKind, OrderKind name mechanism
	// choices within a Spec.
	RecoveryKind = mechanism.RecoveryKind
	ConnKind     = mechanism.ConnKind
	WindowKind   = mechanism.WindowKind
	OrderKind    = mechanism.OrderKind
	// Notification is a session event raised to the application.
	Notification = mechanism.Notification
	// NotificationKind enumerates session events.
	NotificationKind = mechanism.NotificationKind
	// Delivery is one received message unit.
	Delivery = session.Delivery

	// ArbiterPolicy configures the per-host bandwidth arbiter: class
	// weights and floors over the Table-1 service classes, the AIMD
	// estimator constants, and the reallocation cadence (WithArbiter).
	ArbiterPolicy = arbiter.Policy
)

// DefaultArbiterPolicy returns the standard arbiter policy: guaranteed
// floors for the isochronous classes and a weight ladder by class urgency.
func DefaultArbiterPolicy() ArbiterPolicy { return arbiter.DefaultPolicy() }

// Re-exported notification kinds.
const (
	NoteEstablished     = mechanism.NoteEstablished
	NoteClosed          = mechanism.NoteClosed
	NoteEstablishFailed = mechanism.NoteEstablishFailed
	NoteSegue           = mechanism.NoteSegue
	NotePeerReconfig    = mechanism.NotePeerReconfig
	NoteAppLoss         = mechanism.NoteAppLoss
	NoteSendQueueEmpty  = mechanism.NoteSendQueueEmpty
	NotePolicyAction    = mechanism.NotePolicyAction
	NotePeerDead        = mechanism.NotePeerDead
)

// Re-exported TSC constants.
const (
	TSCInteractiveIsochronous    = mantts.TSCInteractiveIsochronous
	TSCDistributionalIsochronous = mantts.TSCDistributionalIsochronous
	TSCRealTimeNonIsochronous    = mantts.TSCRealTimeNonIsochronous
	TSCNonRealTimeNonIsochronous = mantts.TSCNonRealTimeNonIsochronous
)

// Re-exported TSA vocabulary.
const (
	MetricRTT            = mantts.MetricRTT
	MetricLossRate       = mantts.MetricLossRate
	MetricCongestion     = mantts.MetricCongestion
	MetricRetransmitRate = mantts.MetricRetransmitRate
	MetricThroughputBps  = mantts.MetricThroughputBps
	MetricRcvBufFill     = mantts.MetricRcvBufFill
	MetricJitter         = mantts.MetricJitter
	MetricArbiterSqueeze = mantts.MetricArbiterSqueeze

	OpGT = mantts.OpGT
	OpLT = mantts.OpLT

	ActSetRecovery   = mantts.ActSetRecovery
	ActScaleRate     = mantts.ActScaleRate
	ActSetWindowSize = mantts.ActSetWindowSize
	ActSetWindowKind = mantts.ActSetWindowKind
	ActNotifyApp     = mantts.ActNotifyApp
)

// Re-exported mechanism kinds (for Specs, TSA actions, and templates).
const (
	ConnImplicit     = mechanism.ConnImplicit
	ConnExplicit2Way = mechanism.ConnExplicit2Way
	ConnExplicit3Way = mechanism.ConnExplicit3Way

	RecoveryNone            = mechanism.RecoveryNone
	RecoveryGoBackN         = mechanism.RecoveryGoBackN
	RecoverySelectiveRepeat = mechanism.RecoverySelectiveRepeat
	RecoveryFEC             = mechanism.RecoveryFEC
	RecoveryFECHybrid       = mechanism.RecoveryFECHybrid

	WindowFixed       = mechanism.WindowFixed
	WindowStopAndWait = mechanism.WindowStopAndWait
	WindowAdaptive    = mechanism.WindowAdaptive

	OrderNone      = mechanism.OrderNone
	OrderSequenced = mechanism.OrderSequenced
)

// Options configures a Node.
//
// Deprecated: pass functional options (WithProvider, WithHost, WithRules,
// WithMetrics, ...) to NewNode instead. The struct — and its shim
// NewNodeFromOptions — remain for one release.
type Options struct {
	// Provider supplies the network and clock (netsim.Network or
	// udpnet.Provider).
	Provider Provider
	// Host is this node's identity on the provider.
	Host HostID
	// SAPPort overrides the transport service access point port.
	SAPPort uint16
	// Seed feeds the node's deterministic randomness.
	Seed int64
	// Metrics, when set, receives UNITES instrumentation for every
	// session on this node. Nil disables collection.
	//
	// Deprecated: set Observe.Repository (WithObservability) instead.
	Metrics *unites.Repository
	// Tracer, when set, receives flight-recorder records for every session
	// on this node (see internal/trace). Nil disables the hooks.
	//
	// Deprecated: set Observe.Tracer — or Observe.TraceBuffer for a
	// node-owned, streamable recorder — via WithObservability instead.
	Tracer *trace.Recorder
	// Observe configures the observability plane (WithObservability).
	Observe *Observe
	// Name tags this node's metrics scope.
	Name string
	// Synth overrides the TKO synthesizer (template experiments).
	Synth *tko.Synthesizer
	// Rules are node-level default TSA rules, applied to dialed
	// connections whose ACD carries no policy of its own.
	Rules []Rule
	// Arbiter, when set, enables the per-host bandwidth arbiter under the
	// policy (WithArbiter).
	Arbiter *ArbiterPolicy
}

// Option configures one aspect of a Node (functional options for NewNode).
type Option func(*Options)

// WithProvider supplies the network and clock (netsim.Network or
// udpnet.Provider). Required.
func WithProvider(p Provider) Option { return func(o *Options) { o.Provider = p } }

// WithHost sets this node's identity on the provider.
func WithHost(h HostID) Option { return func(o *Options) { o.Host = h } }

// WithSAPPort overrides the transport service access point port.
func WithSAPPort(port uint16) Option { return func(o *Options) { o.SAPPort = port } }

// WithSeed feeds the node's deterministic randomness.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithMetrics routes UNITES instrumentation for every session on this node
// into the repository.
//
// Deprecated: use WithObservability(Observe{Repository: r}) — the Observe
// group also exposes the collected state back through Node.Observability()
// (snapshots, Prometheus/JSON endpoint, live trace tails). This option
// remains one release and folds into the same plane.
func WithMetrics(r *unites.Repository) Option { return func(o *Options) { o.Metrics = r } }

// WithTracer routes flight-recorder records for every session on this node
// into the recorder. Attach the same recorder to the simulation kernel
// (sim.Kernel.SetTracer) to capture kernel and link events alongside.
//
// Deprecated: use WithObservability(Observe{Tracer: r}) for an external
// recorder, or Observe{TraceBuffer: n} for a node-owned recorder that can
// stream live through Node.Observability().TraceTail. This option remains
// one release and folds into the same plane.
func WithTracer(r *trace.Recorder) Option { return func(o *Options) { o.Tracer = r } }

// WithName tags this node's metrics scope.
func WithName(name string) Option { return func(o *Options) { o.Name = name } }

// WithSynthesizer overrides the TKO synthesizer (template experiments).
func WithSynthesizer(s *tko.Synthesizer) Option { return func(o *Options) { o.Synth = s } }

// WithRules installs node-level default TSA rules: dialed connections whose
// ACD names no policy of its own run under these (typically graceful-
// degradation rules reacting to loss and delay shifts).
func WithRules(rules ...Rule) Option {
	return func(o *Options) { o.Rules = append(o.Rules, rules...) }
}

// WithArbiter enables the per-host bandwidth arbiter: a congestion manager
// that aggregates loss, RTT-inflation, and environment congestion hints
// across every session dialed on this node into one shared bottleneck
// estimate, and divides the estimated capacity into per-session pacing
// budgets by Table-1 class policy (floors for isochronous classes, weighted
// shares above them, work-conserving redistribution). Sessions receive
// budget changes through Conn.OnBudgetChange; arbiter state appears as
// adaptive_arbiter_* gauges on the observability plane's /metrics.
func WithArbiter(pol ArbiterPolicy) Option {
	return func(o *Options) { o.Arbiter = &pol }
}

// Node is one host's complete ADAPTIVE transport system instance: a
// protocol graph (TKO), a MANTTS entity, and UNITES instrumentation.
type Node struct {
	stack  *protograph.Stack
	entity *mantts.Entity
	obs    *Observability
	arb    *arbiter.Arbiter
	name   string
	rules  []Rule
}

// NewNode brings up ADAPTIVE on a host.
func NewNode(opts ...Option) (*Node, error) {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return newNode(o)
}

// NewNodeFromOptions brings up ADAPTIVE from an Options struct.
//
// Deprecated: use NewNode with functional options.
func NewNodeFromOptions(opts Options) (*Node, error) { return newNode(opts) }

func newNode(opts Options) (*Node, error) {
	if opts.Provider == nil {
		return nil, fmt.Errorf("adaptive: a Provider is required (WithProvider)")
	}
	name := opts.Name
	if name == "" {
		name = fmt.Sprintf("%v", opts.Host)
	}
	// Both API generations land on one plane: the deprecated Metrics/Tracer
	// options fold into the Observe group, so legacy callers get a working
	// Node.Observability() too. A synthesized group keeps legacy semantics
	// exactly (no repository means no collection); an explicit Observe with
	// a nil Repository gets a private per-node one.
	obs := opts.Observe
	synthesized := false
	if obs == nil && (opts.Metrics != nil || opts.Tracer != nil) {
		obs = &Observe{}
		synthesized = true
	}
	var (
		repo   *unites.Repository
		tracer *trace.Recorder
		owned  bool
	)
	if obs != nil {
		repo = obs.Repository
		if repo == nil {
			repo = opts.Metrics
		}
		if repo == nil && !synthesized {
			repo = unites.NewRepository()
		}
		tracer = obs.Tracer
		if tracer == nil {
			tracer = opts.Tracer
		}
		if tracer == nil && obs.TraceBuffer > 0 {
			// Node-owned recorder: the only kind the node installs live
			// streaming on — externally-owned recorders keep their owner's
			// collection discipline.
			tracer = trace.NewRecorder(obs.TraceBuffer)
			if obs.TraceSample > 1 {
				if err := tracer.SetSample(obs.TraceSample); err != nil {
					return nil, err
				}
			}
			owned = true
		}
	}
	var mf protograph.MetricFactory
	if repo != nil {
		sink := repo.SinkFor(name)
		mf = func(connID uint32) mechanism.MetricSink { return sink(connID) }
	}
	stack, err := protograph.NewStack(protograph.Config{
		Provider: opts.Provider,
		Host:     opts.Host,
		SAPPort:  opts.SAPPort,
		Seed:     opts.Seed,
		Synth:    opts.Synth,
		Metrics:  mf,
		Tracer:   tracer,
	})
	if err != nil {
		return nil, err
	}
	n := &Node{stack: stack, entity: mantts.NewEntity(stack), name: name, rules: opts.Rules}
	if opts.Arbiter != nil {
		n.arb = arbiter.New(*opts.Arbiter)
		n.entity.SetArbiter(n.arb)
		n.startHintPoller(opts.Provider)
	}
	n.obs = &Observability{}
	if obs != nil {
		var recs []*trace.Recorder
		if owned {
			recs = []*trace.Recorder{tracer}
		}
		plane, err := obsv.New(obsv.Options{
			Repository: repo,
			Recorders:  recs,
			FlushEvery: obs.TraceFlush,
			Queue:      obs.TraceQueue,
			Archive:    obs.TraceArchive,
			Counters:   obs.Counters,
		})
		if err != nil {
			return nil, err
		}
		n.obs = &Observability{plane: plane, repo: repo, rec: tracer, owned: owned}
		if obs.Listen != "" {
			if _, err := plane.Serve(obs.Listen); err != nil {
				plane.Close()
				return nil, err
			}
		}
	}
	if n.arb != nil {
		// Arbiter state rides the same plane as every other process gauge
		// (rendered adaptive_arbiter_* on /metrics).
		n.obs.RegisterCounters(n.arb.MetricCounters())
	}
	return n, nil
}

// hintPollEvery is the cadence of the environment congestion-hint poll.
const hintPollEvery = 100 * time.Millisecond

// startHintPoller turns a provider's drop counters into ECN-like arbiter
// hints: when the environment (the impair shim's fault plan, the udpnet
// loop's shed posts) discards packets between polls, the arbiter learns of
// congestion no single session's signal can attribute. Providers without
// drop counters (plain netsim) contribute nothing; loss and RTT inflation
// carry the signal there.
func (n *Node) startHintPoller(p Provider) {
	type pktDrops interface{ DroppedPackets() uint64 }
	type postDrops interface{ DroppedPosts() uint64 }
	var read func() uint64
	switch d := p.(type) {
	case pktDrops:
		read = d.DroppedPackets
	case postDrops:
		read = d.DroppedPosts
	}
	if read == nil {
		return
	}
	clock := n.stack.Clock()
	last := read()
	n.stack.Timers().SchedulePeriodic(hintPollEvery, hintPollEvery, func() {
		if d := read(); d != last {
			last = d
			n.arb.Hint(clock.Now())
		}
	})
}

// ArbiterStatus is a scrape-safe snapshot of the bandwidth arbiter.
type ArbiterStatus struct {
	Enabled     bool
	CapacityBps float64 // shared bottleneck estimate
	Sessions    int     // sessions under arbitration
	Grants      uint64  // budget deliveries
	Decreases   uint64  // multiplicative decreases
	Hints       uint64  // environment congestion hints accepted
}

// ArbiterStatus reports the bandwidth arbiter's current state (zero value
// when the node runs without WithArbiter). Safe from any goroutine.
func (n *Node) ArbiterStatus() ArbiterStatus {
	if n.arb == nil {
		return ArbiterStatus{}
	}
	c := n.arb.MetricCounters()
	return ArbiterStatus{
		Enabled:     true,
		CapacityBps: float64(c["arbiter.capacity_bps"]()),
		Sessions:    int(c["arbiter.sessions"]()),
		Grants:      n.arb.Grants(),
		Decreases:   n.arb.Decreases(),
		Hints:       n.arb.Hints(),
	}
}

// Observability returns the node's observability handle. It is never nil;
// Enabled() reports whether a plane was configured (WithObservability, or
// the deprecated WithMetrics/WithTracer options).
func (n *Node) Observability() *Observability { return n.obs }

// Close releases node resources: the observability plane's trace stream is
// flushed and its HTTP endpoint stops. Call after the node's event source
// has quiesced (simulation drained or provider closed).
func (n *Node) Close() error { return n.obs.Close() }

// Stack exposes the protocol graph (advanced use and experiments).
func (n *Node) Stack() *protograph.Stack { return n.stack }

// Entity exposes the MANTTS entity (network seeding, probing, multicast
// membership management).
func (n *Node) Entity() *mantts.Entity { return n.entity }

// Addr returns the node's transport SAP address.
func (n *Node) Addr() Addr { return n.stack.LocalAddr() }

// SeedPath installs a-priori network knowledge about a peer (bandwidth,
// RTT, BER, MTU) into the MANTTS network state descriptor.
func (n *Node) SeedPath(peer HostID, info mantts.StaticPathInfo) {
	n.entity.NetState().Seed(peer, info)
}

// Probe starts periodic RTT probing toward a peer.
//
// Deprecated: the probe ticker runs until another campaign replaces it —
// callers that forget to replace or stop it leak the timer for the life of
// the node. Use ProbeContext, which bounds the campaign with a context and
// returns a stop func. This shim remains one release.
func (n *Node) Probe(peer HostID, every time.Duration) {
	n.entity.StartProbing(peer, every)
}

// ProbeContext starts periodic RTT probing toward a peer, replacing any
// existing campaign for that peer. Probing stops when ctx is canceled
// (observed at the next tick) or when the returned stop func runs; both
// are idempotent.
func (n *Node) ProbeContext(ctx context.Context, peer HostID, every time.Duration) (stop func()) {
	return n.entity.StartProbingCtx(ctx, peer, every)
}

// OnNotification installs the node-wide application call-back for session
// events (establishment, loss, policy actions, peer reconfigurations).
//
// Deprecated: this is a single slot — installing a second callback silently
// replaces the first, so user code and tooling cannot observe the node at
// the same time. Use Subscribe, which supports any number of listeners.
// This shim remains one release; its callback fires before subscribers.
func (n *Node) OnNotification(fn func(connID uint32, note Notification)) {
	n.entity.Notify = fn
}

// Subscribe registers a listener for node-wide session events
// (establishment, loss, policy actions, peer reconfigurations) alongside
// any other listeners. Listeners fire in registration order on the node's
// event loop — return quickly and do not call back into the node from the
// listener. The returned cancel is idempotent.
func (n *Node) Subscribe(fn func(connID uint32, note Notification)) (cancel func()) {
	return n.entity.SubscribeNotes(fn)
}

// DialOptions names the optional per-dial parameters (replacing the opaque
// trailing integer argument of the pre-1.0 Dial signature). The zero value
// — or a nil *DialOptions — keeps every default.
type DialOptions struct {
	// LocalPort fixes the local transport port; 0 selects an ephemeral one.
	LocalPort uint16
	// EstablishTimeout bounds connection establishment: handshake retries
	// back off exponentially and the dial fails (NoteEstablishFailed) once
	// this much session-clock time passes. Zero keeps only the retry-count
	// bound.
	EstablishTimeout time.Duration
	// Keepalive enables dead-peer detection: an idle established connection
	// probes the peer this often and raises NotePeerDead after DeadInterval
	// of silence. Zero disables keepalives.
	Keepalive time.Duration
	// DeadInterval is the silence threshold for declaring the peer dead;
	// it defaults to three Keepalive periods.
	DeadInterval time.Duration
}

// Dial opens a connection described by an ACD. MANTTS performs the full
// three-stage transformation; the returned Conn is usable immediately (data
// queues until establishment completes). opts may be nil.
func (n *Node) Dial(acd *ACD, opts *DialOptions) (*Conn, error) {
	return n.DialContext(context.Background(), acd, opts)
}

// DialContext is Dial under a context: cancellation or deadline expiry
// aborts establishment retry (the connection reports NoteEstablishFailed).
//
// The session may run on a virtual clock (netsim); a context deadline is
// mapped to an equivalent session-clock establishment timeout at dial time,
// and cancellation is observed by a session timer polling ctx between
// handshake events — deterministic under simulation, prompt over UDP.
func (n *Node) DialContext(ctx context.Context, acd *ACD, opts *DialOptions) (*Conn, error) {
	do, err := dialOptionsUnder(ctx, opts)
	if err != nil {
		return nil, err
	}
	m, err := n.entity.OpenSessionWith(acd, mantts.OpenOptions{
		LocalPort:  do.LocalPort,
		DefaultTSA: n.rules,
		AdjustSpec: func(s *Spec) { do.applyTo(s) },
	})
	if err != nil {
		return nil, err
	}
	c := &Conn{node: n, managed: m, sess: m.Session}
	n.watchContext(ctx, c)
	return c, nil
}

// DialSpec bypasses MANTTS and opens a session with an explicit SCS
// (experiments and backward-compatibility templates).
func (n *Node) DialSpec(spec Spec, peer Addr, localPort, peerPort uint16) (*Conn, error) {
	return n.DialSpecContext(context.Background(), spec, peer, localPort, peerPort)
}

// DialSpecContext is DialSpec under a context (see DialContext).
func (n *Node) DialSpecContext(ctx context.Context, spec Spec, peer Addr, localPort, peerPort uint16) (*Conn, error) {
	if _, err := dialOptionsUnder(ctx, nil); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); spec.EstablishTimeout == 0 || rem < spec.EstablishTimeout {
			spec.EstablishTimeout = rem
		}
	}
	s, _, err := n.stack.CreateActiveSession(&spec, peer, localPort, peerPort)
	if err != nil {
		return nil, err
	}
	s.Open()
	c := &Conn{node: n, sess: s}
	n.watchContext(ctx, c)
	return c, nil
}

// dialOptionsUnder folds a context's deadline into the dial options and
// rejects an already-expired context.
func dialOptionsUnder(ctx context.Context, opts *DialOptions) (DialOptions, error) {
	var do DialOptions
	if opts != nil {
		do = *opts
	}
	if err := ctx.Err(); err != nil {
		return do, err
	}
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return do, context.DeadlineExceeded
		}
		if do.EstablishTimeout == 0 || rem < do.EstablishTimeout {
			do.EstablishTimeout = rem
		}
	}
	return do, nil
}

// applyTo writes the dial-time knobs into the derived SCS.
func (do DialOptions) applyTo(s *Spec) {
	if do.EstablishTimeout > 0 {
		s.EstablishTimeout = do.EstablishTimeout
	}
	if do.Keepalive > 0 {
		s.KeepaliveInterval = do.Keepalive
		s.DeadInterval = do.DeadInterval // Normalize defaults it to 3x
	}
}

// watchContext aborts an in-progress establishment when ctx is canceled. A
// context without cancellation costs nothing. Observation runs on the
// session's timer wheel rather than a goroutine, so it is deterministic
// under the single-threaded simulation kernel.
func (n *Node) watchContext(ctx context.Context, c *Conn) {
	if ctx.Done() == nil {
		return
	}
	const pollEvery = 10 * time.Millisecond
	timers := n.stack.Timers()
	var tick func()
	tick = func() {
		if c.sess.Established() || c.sess.Closed() {
			return
		}
		if err := ctx.Err(); err != nil {
			c.sess.AbortEstablish("dial canceled: " + err.Error())
			return
		}
		timers.Schedule(pollEvery, tick)
	}
	timers.Schedule(pollEvery, tick)
}

// Listen accepts connections on a transport port. The accept callback runs
// before any data is delivered. adjust (optional) implements the local half
// of QoS negotiation: it may modify the peer's proposed Spec.
func (n *Node) Listen(port uint16, adjust func(proposed *Spec, from Addr) *Spec, accept func(*Conn)) error {
	return n.stack.Listen(port, &protograph.Listener{
		Adjust: adjust,
		OnAccept: func(s *session.Session) {
			// Sessions without an ack stream report delivered quality
			// back over the signaling channel so the sender's policy
			// engine sees loss (§4.3 feedback to MANTTS).
			if !s.CurrentSlots().Recovery.Reliable() {
				n.entity.StartQualityReports(s, s.PeerAddr())
			}
			accept(&Conn{node: n, sess: s})
		},
	})
}

// Unlisten removes a listener from a port.
func (n *Node) Unlisten(port uint16) { n.stack.Unlisten(port) }

// OnMulticastJoin installs the handler invoked when this node is invited
// into a multicast session.
func (n *Node) OnMulticastJoin(fn func(c *Conn, group HostID)) {
	n.entity.OnMulticastAccept = func(s *session.Session, group HostID) {
		fn(&Conn{node: n, sess: s}, group)
	}
}
