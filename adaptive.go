// Package adaptive is a Go implementation of ADAPTIVE — "A Dynamically
// Assembled Protocol Transformation, Integration, and Validation
// Environment" (Schmidt, Box, Suda; HPDC 1992): a flexible and adaptive
// transport system that configures lightweight protocol sessions from
// application quality-of-service requirements and network characteristics,
// and reconfigures them at run time under policy control.
//
// The three subsystems of the paper map onto this module as follows:
//
//   - MANTTS (Map Applications and Networks To Transport Systems) —
//     internal/mantts: ACD (Table 2), Transport Service Classes (Table 1),
//     the three-stage transformation, QoS negotiation, the network state
//     descriptor, and the TSA policy engine.
//   - TKO (Transport Kernel Objects) — internal/tko, internal/session and
//     the mechanism packages: the mechanism repository, synthesizer,
//     template cache, and the live session with segue.
//   - UNITES (UNIform Transport Evaluation Subsystem) — internal/unites:
//     blackbox/whitebox metric collection and the metric repository.
//
// A Node is one host's complete ADAPTIVE instance. Applications describe
// what they need in an ACD and call Dial; MANTTS chooses the policies
// (Stage I), derives the mechanisms (Stage II), and TKO synthesizes the
// session (Stage III):
//
//	node, _ := adaptive.NewNode(adaptive.Options{Provider: network, Host: hostID})
//	conn, _ := node.Dial(&adaptive.ACD{
//	    Participants: []adaptive.Addr{peer},
//	    RemotePort:   80,
//	    Quant:        adaptive.QuantQoS{AvgThroughputBps: 2e6, MaxLatency: 100 * time.Millisecond},
//	    Qual:         adaptive.QualQoS{Ordered: true},
//	}, 0)
//	conn.OnReceive(func(data []byte, eom bool) { ... })
//	conn.Send(payload)
//
// The package runs unmodified over two network providers: the deterministic
// discrete-event simulator (internal/netsim, used by every experiment) and
// real UDP sockets (internal/udpnet).
package adaptive

import (
	"fmt"
	"time"

	"adaptive/internal/mantts"
	"adaptive/internal/mechanism"
	"adaptive/internal/netapi"
	"adaptive/internal/protograph"
	"adaptive/internal/session"
	"adaptive/internal/tko"
	"adaptive/internal/unites"
)

// Re-exported core types: the public vocabulary of the system.
type (
	// Addr is a transport address (host or multicast group + port).
	Addr = netapi.Addr
	// HostID identifies a host or multicast group.
	HostID = netapi.HostID
	// Provider is a pluggable network environment.
	Provider = netapi.Provider

	// ACD is the ADAPTIVE Communication Descriptor (paper Table 2).
	ACD = mantts.ACD
	// QuantQoS holds quantitative QoS parameters.
	QuantQoS = mantts.QuantQoS
	// QualQoS holds qualitative QoS parameters.
	QualQoS = mantts.QualQoS
	// TMC is the Transport Measurement Component.
	TMC = mantts.TMC
	// Rule is a TSA <condition, action> pair.
	Rule = mantts.Rule
	// Cond is a TSA condition.
	Cond = mantts.Cond
	// Action is a TSA action.
	Action = mantts.Action
	// TSC is a Transport Service Class (paper Table 1).
	TSC = mantts.TSC

	// Spec is a Session Configuration Specification (SCS).
	Spec = mechanism.Spec
	// RecoveryKind, ConnKind, WindowKind, OrderKind name mechanism
	// choices within a Spec.
	RecoveryKind = mechanism.RecoveryKind
	ConnKind     = mechanism.ConnKind
	WindowKind   = mechanism.WindowKind
	OrderKind    = mechanism.OrderKind
	// Notification is a session event raised to the application.
	Notification = mechanism.Notification
	// NotificationKind enumerates session events.
	NotificationKind = mechanism.NotificationKind
	// Delivery is one received message unit.
	Delivery = session.Delivery
)

// Re-exported notification kinds.
const (
	NoteEstablished     = mechanism.NoteEstablished
	NoteClosed          = mechanism.NoteClosed
	NoteEstablishFailed = mechanism.NoteEstablishFailed
	NoteSegue           = mechanism.NoteSegue
	NotePeerReconfig    = mechanism.NotePeerReconfig
	NoteAppLoss         = mechanism.NoteAppLoss
	NoteSendQueueEmpty  = mechanism.NoteSendQueueEmpty
	NotePolicyAction    = mechanism.NotePolicyAction
)

// Re-exported TSC constants.
const (
	TSCInteractiveIsochronous    = mantts.TSCInteractiveIsochronous
	TSCDistributionalIsochronous = mantts.TSCDistributionalIsochronous
	TSCRealTimeNonIsochronous    = mantts.TSCRealTimeNonIsochronous
	TSCNonRealTimeNonIsochronous = mantts.TSCNonRealTimeNonIsochronous
)

// Re-exported TSA vocabulary.
const (
	MetricRTT            = mantts.MetricRTT
	MetricLossRate       = mantts.MetricLossRate
	MetricCongestion     = mantts.MetricCongestion
	MetricRetransmitRate = mantts.MetricRetransmitRate
	MetricThroughputBps  = mantts.MetricThroughputBps
	MetricRcvBufFill     = mantts.MetricRcvBufFill
	MetricJitter         = mantts.MetricJitter

	OpGT = mantts.OpGT
	OpLT = mantts.OpLT

	ActSetRecovery   = mantts.ActSetRecovery
	ActScaleRate     = mantts.ActScaleRate
	ActSetWindowSize = mantts.ActSetWindowSize
	ActSetWindowKind = mantts.ActSetWindowKind
	ActNotifyApp     = mantts.ActNotifyApp
)

// Re-exported mechanism kinds (for Specs, TSA actions, and templates).
const (
	ConnImplicit     = mechanism.ConnImplicit
	ConnExplicit2Way = mechanism.ConnExplicit2Way
	ConnExplicit3Way = mechanism.ConnExplicit3Way

	RecoveryNone            = mechanism.RecoveryNone
	RecoveryGoBackN         = mechanism.RecoveryGoBackN
	RecoverySelectiveRepeat = mechanism.RecoverySelectiveRepeat
	RecoveryFEC             = mechanism.RecoveryFEC
	RecoveryFECHybrid       = mechanism.RecoveryFECHybrid

	WindowFixed       = mechanism.WindowFixed
	WindowStopAndWait = mechanism.WindowStopAndWait
	WindowAdaptive    = mechanism.WindowAdaptive

	OrderNone      = mechanism.OrderNone
	OrderSequenced = mechanism.OrderSequenced
)

// Options configures a Node.
type Options struct {
	// Provider supplies the network and clock (netsim.Network or
	// udpnet.Provider).
	Provider Provider
	// Host is this node's identity on the provider.
	Host HostID
	// SAPPort overrides the transport service access point port.
	SAPPort uint16
	// Seed feeds the node's deterministic randomness.
	Seed int64
	// Metrics, when set, receives UNITES instrumentation for every
	// session on this node. Nil disables collection.
	Metrics *unites.Repository
	// Name tags this node's metrics scope.
	Name string
	// Synth overrides the TKO synthesizer (template experiments).
	Synth *tko.Synthesizer
}

// Node is one host's complete ADAPTIVE transport system instance: a
// protocol graph (TKO), a MANTTS entity, and UNITES instrumentation.
type Node struct {
	stack  *protograph.Stack
	entity *mantts.Entity
	name   string
}

// NewNode brings up ADAPTIVE on a host.
func NewNode(opts Options) (*Node, error) {
	if opts.Provider == nil {
		return nil, fmt.Errorf("adaptive: Options.Provider is required")
	}
	name := opts.Name
	if name == "" {
		name = fmt.Sprintf("%v", opts.Host)
	}
	var mf protograph.MetricFactory
	if opts.Metrics != nil {
		sink := opts.Metrics.SinkFor(name)
		mf = func(connID uint32) mechanism.MetricSink { return sink(connID) }
	}
	stack, err := protograph.NewStack(protograph.Config{
		Provider: opts.Provider,
		Host:     opts.Host,
		SAPPort:  opts.SAPPort,
		Seed:     opts.Seed,
		Synth:    opts.Synth,
		Metrics:  mf,
	})
	if err != nil {
		return nil, err
	}
	n := &Node{stack: stack, entity: mantts.NewEntity(stack), name: name}
	return n, nil
}

// Stack exposes the protocol graph (advanced use and experiments).
func (n *Node) Stack() *protograph.Stack { return n.stack }

// Entity exposes the MANTTS entity (network seeding, probing, multicast
// membership management).
func (n *Node) Entity() *mantts.Entity { return n.entity }

// Addr returns the node's transport SAP address.
func (n *Node) Addr() Addr { return n.stack.LocalAddr() }

// SeedPath installs a-priori network knowledge about a peer (bandwidth,
// RTT, BER, MTU) into the MANTTS network state descriptor.
func (n *Node) SeedPath(peer HostID, info mantts.StaticPathInfo) {
	n.entity.NetState().Seed(peer, info)
}

// Probe starts periodic RTT probing toward a peer.
func (n *Node) Probe(peer HostID, every time.Duration) {
	n.entity.StartProbing(peer, every)
}

// OnNotification installs the node-wide application call-back for session
// events (establishment, loss, policy actions, peer reconfigurations).
func (n *Node) OnNotification(fn func(connID uint32, note Notification)) {
	n.entity.Notify = fn
}

// Dial opens a connection described by an ACD. MANTTS performs the full
// three-stage transformation; the returned Conn is usable immediately (data
// queues until establishment completes).
func (n *Node) Dial(acd *ACD, localPort uint16) (*Conn, error) {
	m, err := n.entity.OpenSession(acd, localPort)
	if err != nil {
		return nil, err
	}
	return &Conn{node: n, managed: m, sess: m.Session}, nil
}

// DialSpec bypasses MANTTS and opens a session with an explicit SCS
// (experiments and backward-compatibility templates).
func (n *Node) DialSpec(spec Spec, peer Addr, localPort, peerPort uint16) (*Conn, error) {
	s, _, err := n.stack.CreateActiveSession(&spec, peer, localPort, peerPort)
	if err != nil {
		return nil, err
	}
	s.Open()
	return &Conn{node: n, sess: s}, nil
}

// Listen accepts connections on a transport port. The accept callback runs
// before any data is delivered. adjust (optional) implements the local half
// of QoS negotiation: it may modify the peer's proposed Spec.
func (n *Node) Listen(port uint16, adjust func(proposed *Spec, from Addr) *Spec, accept func(*Conn)) error {
	return n.stack.Listen(port, &protograph.Listener{
		Adjust: adjust,
		OnAccept: func(s *session.Session) {
			// Sessions without an ack stream report delivered quality
			// back over the signaling channel so the sender's policy
			// engine sees loss (§4.3 feedback to MANTTS).
			if !s.CurrentSlots().Recovery.Reliable() {
				n.entity.StartQualityReports(s, s.PeerAddr())
			}
			accept(&Conn{node: n, sess: s})
		},
	})
}

// Unlisten removes a listener from a port.
func (n *Node) Unlisten(port uint16) { n.stack.Unlisten(port) }

// OnMulticastJoin installs the handler invoked when this node is invited
// into a multicast session.
func (n *Node) OnMulticastJoin(fn func(c *Conn, group HostID)) {
	n.entity.OnMulticastAccept = func(s *session.Session, group HostID) {
		fn(&Conn{node: n, sess: s}, group)
	}
}
