// Command adaptiveqos inspects the MANTTS transformation pipeline without
// running traffic: it prints the Table 1 policy table, or maps an
// application profile (or custom QoS flags) through Stage I (TSC selection)
// and Stage II (SCS derivation) for a described network path.
//
// Usage:
//
//	adaptiveqos -table1                          # print the TSC policy table
//	adaptiveqos -app "Voice Conversation"        # transform a Table 1 row
//	adaptiveqos -latency 100ms -loss-tol 0.05 \
//	            -rtt 550ms -ber 1e-7             # transform custom QoS
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adaptive/internal/mantts"
	"adaptive/internal/netapi"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "print the Table 1 policy table and exit")
		app     = flag.String("app", "", "Table 1 application name to transform")
		avgBps  = flag.Float64("avg-bps", 2e6, "average throughput requirement (bps)")
		peakBps = flag.Float64("peak-bps", 0, "peak throughput requirement (bps; 0 = same as avg)")
		latency = flag.Duration("latency", 0, "max end-to-end latency (0 = unconstrained)")
		jitter  = flag.Duration("jitter", 0, "max jitter (0 = unconstrained)")
		lossTol = flag.Float64("loss-tol", 0, "acceptable loss fraction [0,1]")
		dur     = flag.Duration("duration", 0, "expected session duration")
		ordered = flag.Bool("ordered", true, "require in-order delivery")
		mcast   = flag.Int("multicast", 0, "number of receivers (0/1 = unicast)")

		rtt  = flag.Duration("rtt", 20*time.Millisecond, "network path round-trip time")
		bw   = flag.Float64("bw", 100e6, "network path bandwidth (bps)")
		ber  = flag.Float64("ber", 1e-9, "channel bit-error rate")
		mtu  = flag.Int("mtu", 1500, "path MTU")
		cong = flag.Float64("congestion", 0, "congestion level estimate [0,1]")
	)
	flag.Parse()

	if *table1 {
		fmt.Print(mantts.RenderTable1())
		return
	}

	var acd *mantts.ACD
	if *app != "" {
		p := mantts.Profile(*app)
		if p == nil {
			fmt.Fprintf(os.Stderr, "unknown application %q; Table 1 rows:\n%s", *app, mantts.RenderTable1())
			os.Exit(2)
		}
		acd = mantts.ACDForProfile(p)
		if p.Multicast {
			acd.Participants = []netapi.Addr{{Host: netapi.MulticastBit | 1}, {Host: 2}, {Host: 3}}
		} else {
			acd.Participants = []netapi.Addr{{Host: 2}}
		}
	} else {
		if *peakBps == 0 {
			*peakBps = *avgBps
		}
		acd = &mantts.ACD{
			Quant: mantts.QuantQoS{
				AvgThroughputBps: *avgBps, PeakThroughputBps: *peakBps,
				MaxLatency: *latency, MaxJitter: *jitter,
				LossTolerance: *lossTol, Duration: *dur,
			},
			Qual: mantts.QualQoS{Ordered: *ordered},
		}
		acd.Participants = []netapi.Addr{{Host: 2}}
		if *mcast > 1 {
			acd.Participants = []netapi.Addr{{Host: netapi.MulticastBit | 1}}
			for i := 0; i < *mcast; i++ {
				acd.Participants = append(acd.Participants, netapi.Addr{Host: netapi.HostID(2 + i)})
			}
		}
	}

	path := mantts.PathState{RTT: *rtt, Bandwidth: *bw, BER: *ber, MTU: *mtu, Congestion: *cong}
	tsc := mantts.Classify(acd)
	spec := mantts.DeriveSCS(tsc, acd, path)

	fmt.Printf("ACD (quantitative):  avg=%.0f bps peak=%.0f bps latency<=%v jitter<=%v loss<=%.1f%% duration=%v\n",
		acd.Quant.AvgThroughputBps, acd.Quant.PeakThroughputBps, acd.Quant.MaxLatency,
		acd.Quant.MaxJitter, acd.Quant.LossTolerance*100, acd.Quant.Duration)
	fmt.Printf("ACD (qualitative):   ordered=%v dup-sensitive=%v participants=%d\n",
		acd.Qual.Ordered, acd.Qual.DupSensitive, len(acd.Participants))
	fmt.Printf("network descriptor:  rtt=%v bw=%.0f bps ber=%.0e mtu=%d congestion=%.2f\n\n",
		path.RTT, path.Bandwidth, path.BER, path.MTU, path.Congestion)
	fmt.Printf("Stage I  (TSC):      %v\n", tsc)
	fmt.Printf("Stage II (SCS):      %v\n", *spec)
	fmt.Printf("  connection:        %v\n", spec.ConnMgmt)
	fmt.Printf("  reliability:       %v (fec group %d, checksum %v)\n", spec.Recovery, spec.FECGroup, spec.Checksum)
	fmt.Printf("  transmission:      %v, window %d PDUs, pacing %.0f bps\n", spec.Window, spec.WindowSize, spec.RateBps)
	fmt.Printf("  sequencing:        %v\n", spec.Order)
	fmt.Printf("  timers:            rto init=%v min=%v max=%v gap-deadline=%v\n",
		spec.RTOInit, spec.RTOMin, spec.RTOMax, spec.GapDeadline)
	fmt.Printf("  semantics:         graceful-close=%v loss-tolerant=%v multicast=%v\n",
		spec.Graceful, spec.LossTolerant, spec.Multicast)
}
