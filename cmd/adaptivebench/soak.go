package main

// The -soak mode: a long E10 run with the live observability plane attached,
// gating on the two things only wall-clock time can reveal — memory growth
// and result drift. Each iteration re-runs the deterministic sharded soak
// into the shared plane; between iterations the harness scrapes its own
// /metrics endpoint (the same surface an operator would), forces a GC, and
// samples RSS. It fails when
//
//   - any iteration's result fingerprint differs from the first (the
//     fingerprint renders the p50/p999/jitter quantiles in exact hex, so
//     this is also the p999-drift gate), or
//   - RSS grows past an archive-aware allowance (the in-process trace
//     archive grows linearly by design; everything else must plateau), or
//   - the trace stream dropped chunks, or a scrape fails.
//
// It prints "SOAK_ENDPOINT=http://<addr>" on stdout as soon as the endpoint
// is up so a driver script can attach a tail client, and writes
// <prefix>summary.json, <prefix>metrics.json, and (with -trace-out) the
// streamed archive for a trace.Diff against the tail's recording.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"adaptive/internal/experiment"
	"adaptive/internal/trace"
)

type soakConfig struct {
	sessions int
	iters    int
	buffer   int
	sample   uint64
	listen   string
	waitTail time.Duration
	traceOut string
	prefix   string
	allowMB  float64
}

type soakIterRow struct {
	Iter        int     `json:"iter"`
	Delivered   uint64  `json:"delivered"`
	Events      uint64  `json:"events"`
	WallMS      float64 `json:"wall_ms"`
	PktsPerSec  float64 `json:"pkts_per_sec"`
	RSSMB       float64 `json:"rss_mb"`
	HeapMB      float64 `json:"heap_mb"`
	ArchiveRecs uint64  `json:"archive_records"`
	ScrapeBytes int     `json:"scrape_bytes"`
	Fingerprint string  `json:"fingerprint"`
}

type soakSummary struct {
	Sessions      int           `json:"sessions"`
	Iterations    int           `json:"iterations"`
	Sample        uint64        `json:"sample"`
	Endpoint      string        `json:"endpoint,omitempty"`
	Iters         []soakIterRow `json:"iters"`
	BaselineRSSMB float64       `json:"baseline_rss_mb"`
	FinalRSSMB    float64       `json:"final_rss_mb"`
	AllowedMB     float64       `json:"allowed_growth_mb"`
	GrowthMB      float64       `json:"growth_mb"`
	TraceDropped  uint64        `json:"trace_dropped"`
	Failures      []string      `json:"failures,omitempty"`
	Pass          bool          `json:"pass"`
}

// runSoak executes the soak and returns the process exit code.
func runSoak(cfg soakConfig) int {
	o, err := experiment.StartE10Observed(experiment.E10ObservedConfig{
		Buffer:  cfg.buffer,
		Sample:  cfg.sample,
		Archive: true,
		Listen:  cfg.listen,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: start plane: %v\n", err)
		return 2
	}
	defer o.Close()

	endpoint := ""
	if addr := o.Addr(); addr != "" {
		endpoint = "http://" + addr
		// The driver script greps for this exact line to attach a tail.
		fmt.Printf("SOAK_ENDPOINT=%s\n", endpoint)
	}
	if cfg.waitTail > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.waitTail)
		err := o.Plane.WaitSubscriber(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: no tail subscriber within %v: %v\n", cfg.waitTail, err)
			return 2
		}
		fmt.Println("soak: tail subscriber attached")
	}

	sum := soakSummary{Sessions: cfg.sessions, Iterations: cfg.iters, Sample: cfg.sample, Endpoint: endpoint}
	fail := func(format string, args ...any) {
		sum.Failures = append(sum.Failures, fmt.Sprintf(format, args...))
	}

	// Bytes one archived record costs (header amortizes to nothing).
	recBytes := float64(trace.FrameSize(1) - trace.FrameSize(0))

	var fp0 string
	var lastMetrics []byte
	baselineRSS, baselineArch := 0.0, uint64(0)
	for i := 1; i <= cfg.iters; i++ {
		start := time.Now()
		res := o.RunIteration(cfg.sessions)
		wall := time.Since(start)

		fp := res.Fingerprint()
		if i == 1 {
			fp0 = fp
		} else if fp != fp0 {
			fail("iteration %d drifted: %s != %s", i, fp, fp0)
		}

		scrapeBytes := 0
		if endpoint != "" {
			body, err := scrape(endpoint + "/metrics")
			if err != nil {
				fail("iteration %d: scrape /metrics: %v", i, err)
			}
			scrapeBytes = len(body)
			if lastMetrics, err = scrape(endpoint + "/metrics.json"); err != nil {
				fail("iteration %d: scrape /metrics.json: %v", i, err)
			}
		} else {
			if lastMetrics, err = json.MarshalIndent(o.Plane.MetricsSnapshot(), "", "  "); err != nil {
				fail("iteration %d: snapshot: %v", i, err)
			}
		}

		runtime.GC()
		rssMB, heapMB := memMB()
		archRecs := archiveRecords(lastMetrics)
		row := soakIterRow{
			Iter: i, Delivered: res.Delivered, Events: res.Events,
			WallMS: float64(wall.Microseconds()) / 1e3,
			PktsPerSec: float64(res.Delivered) / wall.Seconds(),
			RSSMB: rssMB, HeapMB: heapMB, ArchiveRecs: archRecs,
			ScrapeBytes: scrapeBytes, Fingerprint: fp,
		}
		sum.Iters = append(sum.Iters, row)
		fmt.Printf("soak: iter %d/%d  %d pkts  %.0f pkts/s  rss %.1f MB  heap %.1f MB  archive %d recs\n",
			i, cfg.iters, res.Delivered, row.PktsPerSec, rssMB, heapMB, archRecs)

		// Baseline after iteration 2: the first pass pays one-time pool and
		// allocator warmup that is not a leak.
		if i == 2 || (cfg.iters == 1 && i == 1) {
			baselineRSS, baselineArch = rssMB, archRecs
		}
	}

	// Leak gate. The archive retains every streamed record for the post-run
	// diff, so its linear growth is accounted and doubled (slack for heap
	// fragmentation around it); everything else gets a flat allowance.
	last := sum.Iters[len(sum.Iters)-1]
	archGrowthMB := float64(last.ArchiveRecs-baselineArch) * recBytes / (1 << 20)
	sum.BaselineRSSMB = baselineRSS
	sum.FinalRSSMB = last.RSSMB
	sum.AllowedMB = cfg.allowMB + 2*archGrowthMB
	sum.GrowthMB = last.RSSMB - baselineRSS
	if len(sum.Iters) > 2 && sum.GrowthMB > sum.AllowedMB {
		fail("rss grew %.1f MB over the soak (allowed %.1f MB = %.0f flat + 2x %.1f archive)",
			sum.GrowthMB, sum.AllowedMB, cfg.allowMB, archGrowthMB)
	}

	// End the stream so attached tails see EOF, then check for losses and
	// persist the archive for the tail-vs-archive diff.
	o.Finish()
	if sum.TraceDropped = o.Plane.TraceDropped(); sum.TraceDropped != 0 {
		fail("trace stream dropped %d chunks", sum.TraceDropped)
	}
	if cfg.traceOut != "" {
		set, err := o.Plane.Archive()
		if err != nil {
			fail("archive: %v", err)
		} else if err := set.WriteFile(cfg.traceOut); err != nil {
			fail("write %s: %v", cfg.traceOut, err)
		} else {
			fmt.Printf("soak: wrote archive %s (%d records)\n", cfg.traceOut, set.Len())
		}
	}

	sum.Pass = len(sum.Failures) == 0
	if err := writeSoakFile(cfg.prefix+"metrics.json", lastMetrics); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		return 2
	}
	js, _ := json.MarshalIndent(sum, "", "  ")
	if err := writeSoakFile(cfg.prefix+"summary.json", append(js, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		return 2
	}

	if !sum.Pass {
		for _, f := range sum.Failures {
			fmt.Fprintf(os.Stderr, "soak: FAIL: %s\n", f)
		}
		return 1
	}
	fmt.Printf("soak: PASS  %d iterations, rss growth %.1f MB (allowed %.1f), fingerprint stable\n",
		cfg.iters, sum.GrowthMB, sum.AllowedMB)
	return 0
}

func scrape(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("empty body")
	}
	return body, nil
}

// memMB reports resident set size (VmRSS from /proc/self/status) and heap in
// use, in MiB. On platforms without procfs, RSS falls back to heap-in-use —
// weaker, but the gate still catches heap leaks.
func memMB() (rss, heap float64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heap = float64(ms.HeapInuse) / (1 << 20)
	rss = heap
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if after, ok := strings.CutPrefix(line, "VmRSS:"); ok {
				if kb, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(after), " kB"), 64); err == nil {
					rss = kb / 1024
				}
				break
			}
		}
	}
	return rss, heap
}

// archiveRecords pulls the plane's records-seen counter out of the scraped
// /metrics.json (or a direct snapshot, where it is absent and reads 0) —
// deliberately via the public surface, like any external monitor would.
func archiveRecords(metricsJSON []byte) uint64 {
	var doc struct {
		Plane map[string]uint64 `json:"plane"`
	}
	if err := json.Unmarshal(metricsJSON, &doc); err != nil {
		return 0
	}
	return doc.Plane["obsv.trace.records"]
}

func writeSoakFile(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("soak: wrote %s\n", path)
	return nil
}
