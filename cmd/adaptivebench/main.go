// Command adaptivebench regenerates every table and figure of the ADAPTIVE
// reproduction (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	adaptivebench                  # run everything
//	adaptivebench -experiment E1   # one experiment
//	adaptivebench -list            # list experiment ids
//	adaptivebench -workers 4       # parallel fan-out across experiments
//
// The -soak mode runs the observed E10 soak as a long-lived process with the
// live observability endpoint attached, gating on RSS growth and result
// drift (see soak.go and `make soak`):
//
//	adaptivebench -soak -sessions 1000 -soak-iters 10 -listen 127.0.0.1:0 \
//	    -wait-tail 30s -trace-out SOAK_archive.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"adaptive/internal/experiment"
)

func main() {
	var (
		which   = flag.String("experiment", "all", "experiment id (T1, T2, F2, F3, E1..E10, A1..A3) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel experiment workers for -experiment all")

		soak      = flag.Bool("soak", false, "run the observed E10 soak with the live endpoint (see soak.go)")
		sessions  = flag.Int("sessions", 1000, "with -soak: sessions per iteration")
		soakIters = flag.Int("soak-iters", 10, "with -soak: soak iterations")
		// The soak default ring is deliberately small: with the quarter-ring
		// flush watermark it streams chunks continuously throughout the run
		// (the operator-facing model) instead of in one burst at the end.
		buffer    = flag.Int("buffer", 1<<12, "with -soak: per-shard trace ring in records")
		sample    = flag.Uint64("sample", 64, "with -soak: keep every Nth high-rate trace event")
		listen    = flag.String("listen", "127.0.0.1:0", "with -soak: observability endpoint address ('' disables HTTP)")
		waitTail  = flag.Duration("wait-tail", 0, "with -soak: wait this long for a /trace tail to attach before traffic")
		traceOut  = flag.String("trace-out", "", "with -soak: write the streamed trace archive here")
		outPrefix = flag.String("out-prefix", "SOAK_", "with -soak: prefix for summary.json and metrics.json outputs")
		allowMB   = flag.Float64("allow-mb", 48, "with -soak: flat RSS growth allowance in MiB (archive growth is added)")
	)
	flag.Parse()

	if *soak {
		os.Exit(runSoak(soakConfig{
			sessions: *sessions, iters: *soakIters,
			buffer: *buffer, sample: *sample,
			listen: *listen, waitTail: *waitTail,
			traceOut: *traceOut, prefix: *outPrefix, allowMB: *allowMB,
		}))
	}

	runners := experiment.All()
	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}
	if strings.EqualFold(*which, "all") {
		for _, t := range experiment.RunAllParallel(*workers) {
			fmt.Println(t.Render())
		}
		return
	}
	for _, r := range runners {
		if strings.EqualFold(r.ID, *which) {
			for _, t := range r.Run() {
				fmt.Println(t.Render())
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *which)
	os.Exit(2)
}
