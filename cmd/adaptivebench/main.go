// Command adaptivebench regenerates every table and figure of the ADAPTIVE
// reproduction (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	adaptivebench                  # run everything
//	adaptivebench -experiment E1   # one experiment
//	adaptivebench -list            # list experiment ids
//	adaptivebench -workers 4       # parallel fan-out across experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"adaptive/internal/experiment"
)

func main() {
	var (
		which   = flag.String("experiment", "all", "experiment id (T1, T2, F2, F3, E1..E10, A1..A3) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel experiment workers for -experiment all")
	)
	flag.Parse()

	runners := experiment.All()
	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}
	if strings.EqualFold(*which, "all") {
		for _, t := range experiment.RunAllParallel(*workers) {
			fmt.Println(t.Render())
		}
		return
	}
	for _, r := range runners {
		if strings.EqualFold(r.ID, *which) {
			for _, t := range r.Run() {
				fmt.Println(t.Render())
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *which)
	os.Exit(2)
}
