// Command adaptivetrace records, inspects, converts, and compares flight
// recorder traces (internal/trace) of the reference experiments.
//
// Usage:
//
//	adaptivetrace -record e3 -o e3.trace            # flight-record a run
//	adaptivetrace -record e10 -sessions 1000 -o t   # the E10 soak
//	adaptivetrace -summary e3.trace                 # per-kind counts
//	adaptivetrace -chrome e3.json e3.trace          # chrome://tracing JSON
//	adaptivetrace -chrome e3.json -spans -kinds session.pdu.send,session.segue.commit e3.trace
//	adaptivetrace -diff a.trace b.trace             # exit 1 on divergence
//	adaptivetrace -tail http://host:port -o t       # record a live /trace stream
//
// Recording knobs: -buffer sets the per-shard ring capacity in records,
// -sample 2^k keeps every 2^k-th high-rate event (structural events are
// always kept), -perturb injects the E9 single-event disturbance used by the
// determinism regression tests.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"adaptive/internal/experiment"
	"adaptive/internal/trace"
	"adaptive/internal/wire"
)

func main() {
	var (
		record   = flag.String("record", "", "flight-record an experiment: e3, e9, or e10")
		sessions = flag.Int("sessions", 1000, "total sessions for -record e10")
		perturb  = flag.Bool("perturb", false, "inject the single-event perturbation (-record e9 only)")
		buffer   = flag.Int("buffer", trace.DefaultBuffer, "ring capacity in records per shard (rounded up to a power of two)")
		sample   = flag.Uint64("sample", 1, "keep every Nth high-rate event (N a power of two; 1 = all)")
		out      = flag.String("o", "", "output path for -record (required)")
		chrome   = flag.String("chrome", "", "convert a trace to Chrome trace-event JSON at this path")
		spans    = flag.Bool("spans", false, "with -chrome: derive send->receive spans per (conn, seq)")
		kinds    = flag.String("kinds", "", "with -chrome: comma-separated event kinds to keep (default all)")
		conn     = flag.Uint("conn", 0, "with -chrome: keep session events for this connection id only")
		summary  = flag.Bool("summary", false, "print per-kind counts and shard retention for a trace")
		diff     = flag.Bool("diff", false, "compare two traces; exit 1 and print the first divergence")
		tail     = flag.String("tail", "", "attach to a live observability endpoint and record its /trace stream")
	)
	flag.Parse()

	switch {
	case *record != "":
		if *out == "" {
			fatal("-record requires -o <path>")
		}
		var set *trace.Set
		switch strings.ToLower(*record) {
		case "e3":
			set = experiment.TraceE3(*buffer, *sample)
		case "e9":
			set = experiment.TraceE9(*buffer, *sample, *perturb)
		case "e10":
			set = experiment.TraceE10(*sessions, *buffer, *sample, nil)
		default:
			fatal("unknown experiment %q (want e3, e9, or e10)", *record)
		}
		if err := set.WriteFile(*out); err != nil {
			fatal("write %s: %v", *out, err)
		}
		fmt.Printf("recorded %s: %d shard(s), %d record(s) retained -> %s\n",
			strings.ToLower(*record), len(set.Shards), set.Len(), *out)

	case *chrome != "":
		set := load(oneArg("-chrome"))
		opt := trace.ChromeOptions{Spans: *spans, Conn: uint32(*conn), DataType: uint64(wire.TData)}
		if *kinds != "" {
			opt.Kinds = make(map[trace.Kind]bool)
			for _, name := range strings.Split(*kinds, ",") {
				k, ok := trace.KindByName(strings.TrimSpace(name))
				if !ok {
					fatal("unknown event kind %q (see -summary output for names)", name)
				}
				opt.Kinds[k] = true
			}
		}
		f, err := os.Create(*chrome)
		if err != nil {
			fatal("%v", err)
		}
		if err := set.WriteChrome(f, opt); err != nil {
			fatal("render %s: %v", *chrome, err)
		}
		if err := f.Close(); err != nil {
			fatal("close %s: %v", *chrome, err)
		}
		fmt.Printf("wrote chrome trace %s (load via chrome://tracing or ui.perfetto.dev)\n", *chrome)

	case *tail != "":
		if *out == "" {
			fatal("-tail requires -o <path>")
		}
		set := tailStream(*tail)
		if err := set.WriteFile(*out); err != nil {
			fatal("write %s: %v", *out, err)
		}
		fmt.Printf("tailed %s: %d shard(s), %d record(s) -> %s\n",
			*tail, len(set.Shards), set.Len(), *out)

	case *summary:
		fmt.Print(load(oneArg("-summary")).Summarize())

	case *diff:
		if flag.NArg() != 2 {
			fatal("-diff takes exactly two trace files")
		}
		a, b := load(flag.Arg(0)), load(flag.Arg(1))
		if d, ok := trace.Diff(a, b); !ok {
			fmt.Printf("traces diverge: %s\n", d)
			os.Exit(1)
		}
		fmt.Printf("traces identical: %d shard(s), %d record(s)\n", len(a.Shards), a.Len())

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// oneArg returns the single positional argument a mode requires.
func oneArg(mode string) string {
	if flag.NArg() != 1 {
		fatal("%s takes exactly one trace file, got %s", mode, strconv.Itoa(flag.NArg()))
	}
	return flag.Arg(0)
}

// tailStream subscribes to a live endpoint's /trace stream and reassembles
// it until the serving node finishes its trace (EOF). Gaps — a chunk lost to
// a slow subscriber buffer — are fatal: a tail recording with holes would
// pass a size check but silently fail a record-level diff.
func tailStream(endpoint string) *trace.Set {
	url := strings.TrimSuffix(endpoint, "/") + "/trace"
	resp, err := http.Get(url)
	if err != nil {
		fatal("connect %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal("%s: HTTP %d", url, resp.StatusCode)
	}
	fr, err := trace.NewFrameReader(resp.Body)
	if err != nil {
		fatal("read stream header: %v", err)
	}
	b := trace.NewSetBuilder()
	for {
		c, err := fr.Next()
		if err == io.EOF {
			return b.Set()
		}
		if err != nil {
			fatal("read frame: %v", err)
		}
		if err := b.Add(c); err != nil {
			fatal("stream gap: %v", err)
		}
	}
}

func load(path string) *trace.Set {
	set, err := trace.ReadFile(path)
	if err != nil {
		fatal("read %s: %v", path, err)
	}
	return set
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adaptivetrace: "+format+"\n", args...)
	os.Exit(2)
}
