// Command adaptivectl is the control-plane operator tool: it drives a
// multi-host deployment and reports the controller's placement/routing view
// — which host owns each session's egress, at which lease epoch, and how
// admission and migration are trending.
//
// Both harnesses run a deployment in one process (the controller is an
// in-process authority; only handoff records and ownership updates travel
// the wire), so adaptivectl operates on a deployment it launches itself:
//
//	adaptivectl migrate             # E12: sim migration, print the outcome
//	adaptivectl migrate -live       # the same handoff over UDP loopback
//	adaptivectl status -scenario scenarios/migration-handover.json
//
// "migrate" runs the three-host E12 scenario (source, target, transfer
// peer), migrates the session mid-stream, replays a stale-epoch PDU from
// the old owner, and prints delivery/fencing results plus the final
// controller status. "status" runs a JSON scenario (which may itself carry
// migrate events) and prints the controller view after the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adaptive"
	"adaptive/internal/experiment"
	"adaptive/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "migrate":
		runMigrate(os.Args[2:])
	case "status":
		runStatus(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "adaptivectl: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  adaptivectl migrate [-live] [-seed N] [-phase1 bytes] [-phase2 bytes]
        run the E12 cross-host migration and print the outcome
  adaptivectl status -scenario file.json
        run a scenario and print the controller's placement view
`)
}

func runMigrate(args []string) {
	fs := flag.NewFlagSet("migrate", flag.ExitOnError)
	var (
		live   = fs.Bool("live", false, "run over UDP loopback instead of the simulator")
		seed   = fs.Int64("seed", 12, "deterministic seed")
		phase1 = fs.Int("phase1", 256<<10, "bytes sent from the source host before the handoff")
		phase2 = fs.Int("phase2", 256<<10, "bytes sent from the adopted connection after it")
	)
	fs.Parse(args)

	sc := &experiment.E12Scenario{Name: "adaptivectl", Seed: *seed, Phase1: *phase1, Phase2: *phase2}
	env := "sim"
	run := func() (*experiment.E12Run, error) { return sc.RunSim() }
	if *live {
		env = "live"
		run = func() (*experiment.E12Run, error) { return sc.RunLive() }
	}
	start := time.Now()
	r, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivectl: %v\n", err)
		os.Exit(1)
	}
	gate := "PASS"
	if err := sc.Check(r); err != nil {
		gate = "FAIL: " + err.Error()
	}
	fmt.Printf("environment        %s (%.2fs wall)\n", env, time.Since(start).Seconds())
	fmt.Printf("delivered          %d bytes (source payload %d)\n", len(r.Delivered), *phase1+*phase2)
	fmt.Printf("migration time     %v\n", r.MigrationTime)
	fmt.Printf("stale PDUs fenced  %d\n", r.FencedPDUs)
	fmt.Printf("gate               %s\n\n", gate)
	printStatus(r.Status)
	if gate != "PASS" {
		os.Exit(1)
	}
}

func runStatus(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	file := fs.String("scenario", "", "scenario JSON file (see scenarios/)")
	fs.Parse(args)
	if *file == "" {
		fmt.Fprintln(os.Stderr, "adaptivectl status: -scenario is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivectl: %v\n", err)
		os.Exit(1)
	}
	doc, err := scenario.Parse(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivectl: %v\n", err)
		os.Exit(1)
	}
	rt, err := scenario.Build(doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivectl: %v\n", err)
		os.Exit(1)
	}
	res, err := rt.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivectl: %v\n", err)
		os.Exit(1)
	}
	for _, s := range res.Sessions {
		fmt.Printf("session %-12s delivered %d msgs / %d bytes\n",
			s.Name, s.Meter.Messages, s.Meter.Bytes)
	}
	fmt.Println()
	if rt.Control == nil {
		fmt.Println("no control plane (the scenario has no migrate events)")
		return
	}
	printStatus(rt.Control.Status())
}

func printStatus(st adaptive.ControlStatus) {
	fmt.Println("hosts:")
	for _, h := range st.Hosts {
		cap := "unlimited"
		if h.Capacity > 0 {
			cap = fmt.Sprintf("%d", h.Capacity)
		}
		fmt.Printf("  host %-4d sessions %-4d capacity %s\n", h.Host, h.Sessions, cap)
	}
	fmt.Println("placements:")
	if len(st.Placements) == 0 {
		fmt.Println("  (none)")
	}
	for _, p := range st.Placements {
		state := ""
		if p.Migrating {
			state = fmt.Sprintf("  migrating -> host %d", p.Target)
		}
		fmt.Printf("  conn %-6d owner host %-4d epoch %d%s\n", p.ConnID, p.Owner, p.Epoch, state)
	}
	fmt.Printf("counters: placed=%d migrations=%d failed=%d admission_rejects=%d lease_epochs=%d\n",
		st.SessionsPlaced, st.Migrations, st.MigrationsFailed, st.AdmissionRejects, st.LeaseEpochs)
}
