// Command adaptivesim runs one flag-configurable transfer scenario on the
// simulator and prints delivered QoS plus the UNITES metric report — the
// "controlled prototyping environment for monitoring, analyzing, and
// experimenting with the performance effects of alternative transport system
// designs" in CLI form.
//
// Usage examples:
//
//	adaptivesim -bw 10e6 -rtt 20ms -drop 0.01 -size 1048576
//	adaptivesim -recovery go-back-n -window 8 -drop 0.03
//	adaptivesim -recovery fec -loss-tol 0.05 -order none
//	adaptivesim -acd -latency 100ms -loss-tol 0.05   # let MANTTS derive
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"adaptive"
	"adaptive/internal/mantts"
	"adaptive/internal/measure"
	"adaptive/internal/netsim"
	"adaptive/internal/scenario"
	"adaptive/internal/sim"
	"adaptive/internal/unites"
	"adaptive/internal/wire"
	"adaptive/internal/workload"
)

func main() {
	var (
		bw      = flag.Float64("bw", 10e6, "link bandwidth (bps)")
		rtt     = flag.Duration("rtt", 20*time.Millisecond, "path round-trip time")
		mtu     = flag.Int("mtu", 1500, "link MTU")
		drop    = flag.Float64("drop", 0, "random packet drop rate")
		ber     = flag.Float64("ber", 0, "bit error rate")
		queue   = flag.Int("queue", 1<<20, "bottleneck queue bytes")
		size    = flag.Int("size", 1<<20, "transfer size (bytes)")
		seed    = flag.Int64("seed", 42, "simulation seed")
		useACD  = flag.Bool("acd", false, "derive the config via MANTTS from QoS flags")
		latency = flag.Duration("latency", 0, "ACD max latency (with -acd)")
		lossTol = flag.Float64("loss-tol", 0, "ACD loss tolerance (with -acd, or spec flag)")

		recovery = flag.String("recovery", "selective-repeat", "none|go-back-n|selective-repeat|fec|fec-hybrid")
		window   = flag.Int("window", 32, "window size (PDUs)")
		conn     = flag.String("conn", "explicit-2way", "implicit|explicit-2way|explicit-3way")
		order    = flag.String("order", "sequenced", "sequenced|none")
		rate     = flag.Float64("rate", 0, "pacing rate bps (0 = unpaced)")
		metrics  = flag.Bool("metrics", false, "print the UNITES metric report")
		measureS = flag.String("measure", "", `measurement-language program, e.g.
	'collect rel., app. every 50ms; generate cbr size=160 interval=20ms count=500'
	(overrides -size; implies -metrics for the collected families)`)
		scenarioF = flag.String("scenario", "", "run a JSON scenario file instead of the flag-built topology (see internal/scenario and scenarios/)")
	)
	flag.Parse()

	if *scenarioF != "" {
		runScenario(*scenarioF, *metrics)
		return
	}

	var mspec *measure.Spec
	if *measureS != "" {
		var err error
		mspec, err = measure.Parse(*measureS)
		if err != nil {
			log.Fatal(err)
		}
	}

	kernel := sim.NewKernel(*seed)
	kernel.SetEventLimit(500_000_000)
	network := netsim.New(kernel)
	a, b := network.AddHost(), network.AddHost()
	link := netsim.LinkConfig{
		Bandwidth: *bw, PropDelay: *rtt / 2, MTU: *mtu,
		DropRate: *drop, BER: *ber, QueueLen: *queue,
	}
	network.SetRoute(a.ID(), b.ID(), network.NewLink(link))
	network.SetRoute(b.ID(), a.ID(), network.NewLink(link))

	repo := unites.NewRepository()
	na, err := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(a.ID()), adaptive.WithMetrics(repo), adaptive.WithName("sender"), adaptive.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	nb, err := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(b.ID()), adaptive.WithMetrics(repo), adaptive.WithName("receiver"), adaptive.WithSeed(*seed+1))
	if err != nil {
		log.Fatal(err)
	}
	na.SeedPath(b.ID(), mantts.StaticPathInfo{Bandwidth: *bw, RTT: *rtt, BER: *ber, MTU: *mtu})

	meter := workload.NewMeter(kernel)
	var gotBytes int
	var doneAt time.Duration
	var rx *adaptive.Conn
	nb.Listen(80, nil, func(c *adaptive.Conn) {
		rx = c
		c.OnDelivery(func(d adaptive.Delivery) {
			gotBytes += d.Msg.Len()
			if gotBytes >= *size && doneAt == 0 {
				doneAt = kernel.Now()
			}
			meter.OnDeliver(d)
		})
	})

	var c *adaptive.Conn
	if *useACD {
		c, err = na.Dial(&adaptive.ACD{
			Participants: []adaptive.Addr{nb.Addr()},
			RemotePort:   80,
			Quant: adaptive.QuantQoS{
				AvgThroughputBps: *bw * 0.8, MaxLatency: *latency, LossTolerance: *lossTol,
			},
			Qual: adaptive.QualQoS{Ordered: *order == "sequenced"},
		}, nil)
	} else {
		spec := adaptive.Spec{
			ConnMgmt:     parseConn(*conn),
			Recovery:     parseRecovery(*recovery),
			Window:       adaptive.WindowFixed,
			WindowSize:   *window,
			Order:        parseOrder(*order),
			RateBps:      *rate,
			LossTolerant: *lossTol > 0,
			Graceful:     *lossTol == 0,
			Checksum:     wire.CkCRC32,
		}
		c, err = na.DialSpec(spec, nb.Addr(), 1000, 80)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configuration: %v\n", c.Spec())

	if mspec != nil && mspec.Workload.Kind != measure.WorkloadNone {
		if len(mspec.TMC.Metrics) > 0 {
			c.Session().SetMetricSink(&unites.FilteredSink{Next: c.Session().MetricSink(), Allow: mspec.TMC.Metrics})
			*metrics = true
		}
		start, generated, err := mspec.Workload.Build(na.Stack().Timers(), c)
		if err != nil {
			log.Fatal(err)
		}
		start()
		kernel.RunUntil(30 * time.Minute)
		fmt.Printf("measurement program generated %d messages\n", generated())
	} else {
		g := &workload.Bulk{Out: c, TotalSize: *size, ChunkSize: 64 << 10}
		g.Start(kernel)
		kernel.RunUntil(30 * time.Minute)
	}

	st := c.Stats()
	if mspec != nil {
		fmt.Printf("\ndelivered: %d bytes, last delivery at %v\n", gotBytes, meter.LastAt)
	} else {
		fmt.Printf("\ntransfer: %d of %d bytes", gotBytes, *size)
		if doneAt > 0 {
			fmt.Printf(" in %v (%.2f Mbps goodput)", doneAt, float64(gotBytes)*8/doneAt.Seconds()/1e6)
		} else if meter.LastAt > 0 {
			fmt.Printf(" (incomplete; last delivery at %v)", meter.LastAt)
		}
		fmt.Println()
	}
	fmt.Printf("whitebox (sender):   %d PDUs sent, %d retransmissions, %d segues\n",
		st.SentPDUs, st.Retransmissions, st.Segues)
	if rx != nil {
		rst := rx.Stats()
		fmt.Printf("whitebox (receiver): %d PDUs received, %d FEC-recovered, %d gaps abandoned\n",
			rst.RecvPDUs, rst.FECRecovered, rst.GapsAbandoned)
	}
	fmt.Printf("blackbox: p50 chunk latency %.2f ms, p99 %.2f ms\n",
		meter.Latency.Quantile(0.5)*1e3, meter.Latency.Quantile(0.99)*1e3)
	if *metrics {
		fmt.Println("\nUNITES metric repository:")
		fmt.Print(repo.Render())
	}
}

func parseRecovery(s string) mechanismRecovery {
	switch strings.ToLower(s) {
	case "none":
		return adaptive.RecoveryNone
	case "go-back-n", "gbn":
		return adaptive.RecoveryGoBackN
	case "selective-repeat", "sr":
		return adaptive.RecoverySelectiveRepeat
	case "fec":
		return adaptive.RecoveryFEC
	case "fec-hybrid":
		return adaptive.RecoveryFECHybrid
	}
	fmt.Fprintf(os.Stderr, "unknown recovery %q\n", s)
	os.Exit(2)
	return 0
}

func parseConn(s string) mechanismConn {
	switch strings.ToLower(s) {
	case "implicit":
		return adaptive.ConnImplicit
	case "explicit-2way", "2way":
		return adaptive.ConnExplicit2Way
	case "explicit-3way", "3way":
		return adaptive.ConnExplicit3Way
	}
	fmt.Fprintf(os.Stderr, "unknown conn mgmt %q\n", s)
	os.Exit(2)
	return 0
}

func parseOrder(s string) mechanismOrder {
	switch strings.ToLower(s) {
	case "sequenced":
		return adaptive.OrderSequenced
	case "none", "unordered":
		return adaptive.OrderNone
	}
	fmt.Fprintf(os.Stderr, "unknown order %q\n", s)
	os.Exit(2)
	return 0
}

// Concrete kind types via the re-exported constants.
type (
	mechanismRecovery = adaptive.RecoveryKind
	mechanismConn     = adaptive.ConnKind
	mechanismOrder    = adaptive.OrderKind
)

// runScenario executes a declarative JSON scenario and reports per-session
// delivered QoS.
func runScenario(path string, metrics bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	res, err := scenario.Load(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario complete at t=%v (simulated)\n\n", res.SimTime)
	for _, s := range res.Sessions {
		m := s.Meter
		fmt.Printf("session %q  %v\n", s.Name, s.Spec)
		fmt.Printf("  generated %d messages; delivered %d messages / %d bytes (%.2f%% loss)\n",
			s.Generated, m.Messages, m.Bytes, m.LossRate(s.Generated)*100)
		fmt.Printf("  p50/p99 latency %.2f / %.2f ms, mean jitter %.2f ms, misordered %d\n",
			m.Latency.Quantile(0.5)*1e3, m.Latency.Quantile(0.99)*1e3, m.Jitter.Mean()*1e3, m.Misordered)
		fmt.Printf("  sender: %d PDUs, %d retransmissions, %d FEC-recovered, %d segues\n",
			s.Sent.SentPDUs, s.Sent.Retransmissions, s.Sent.FECRecovered, s.Sent.Segues)
	}
	if metrics {
		fmt.Println("\nUNITES metric repository:")
		fmt.Print(res.Repo.Render())
	}
}
