#!/bin/sh
# Runs the E11 live line-rate benchmark (BenchmarkE11_Live: the mixed
# Table-1 datagram blast over real UDP loopback, once per-packet and once
# through the batched recvmmsg/sendmmsg datapath) and distills the output
# into BENCH_live.json: a meta header (go version, GOMAXPROCS, CPU model,
# exact commit) plus ONE record per benchmark name — the best of COUNT
# runs, where best means lowest ns/pkt. Records are one JSON object per
# line so scripts/bench_compare.sh can diff runs with awk alone.
#
# Two acceptance gates from the batching PR run right here, against THIS
# run's own A/B rows (machine-independent, unlike the baseline diff):
#
#   speedup — batched pkts/s must be at least SPEEDUP_MIN x the per-packet
#             pkts/s on the same machine in the same run (default 2.0).
#   allocs  — the batched path must hold steady-state heap allocations per
#             delivered packet below 1.0.
set -eu

cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"

go test -run '^$' -bench 'BenchmarkE11_Live' -count="$COUNT" . | tee BENCH_live.txt

GOVER=$(go version | awk '{print $3}')
MAXPROCS=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}
CPU=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
git diff --quiet HEAD 2>/dev/null || COMMIT="${COMMIT}-dirty"

awk -v gover="$GOVER" -v maxprocs="$MAXPROCS" -v cpu="$CPU" -v commit="$COMMIT" '
BEGIN {
    printf "{\n  \"meta\": {\"go\": \"%s\", \"gomaxprocs\": %s, \"cpu\": \"%s\", \"commit\": \"%s\"},\n", gover, maxprocs, cpu, commit
    print "  \"results\": ["
}
/^BenchmarkE11_/ {
    name = $1
    pkts = ""; nspkt = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "pkts/s")     pkts   = $(i-1)
        if ($i == "ns/pkt")     nspkt  = $(i-1)
        if ($i == "allocs/pkt") allocs = $(i-1)
    }
    if (pkts == "") next
    if (nspkt == "") nspkt = "null"
    if (allocs == "") allocs = "null"
    # Keep the best (lowest ns/pkt) of the COUNT runs per name.
    if (!(name in best) || nspkt + 0 < best[name]) {
        best[name] = nspkt + 0
        if (!(name in order)) { order[name] = ++n; names[n] = name }
        rec[name] = sprintf("    {\"name\": \"%s\", \"gomaxprocs\": %d, \"pkts_per_sec\": %s, \"ns_per_pkt\": %s, \"allocs_per_pkt\": %s}", \
            name, maxprocs, pkts, nspkt, allocs)
    }
}
END {
    for (i = 1; i <= n; i++) printf "%s%s\n", rec[names[i]], (i < n ? "," : "")
    print "  ]\n}"
}
' BENCH_live.txt > BENCH_live.json

echo "wrote BENCH_live.json ($(grep -c '"name"' BENCH_live.json) records, best of $COUNT runs)"

# The batching acceptance bars, judged A/B within this run.
SPEEDUP_MIN="${SPEEDUP_MIN:-2.0}"
awk -v minspeed="$SPEEDUP_MIN" '
/"name"/ {
    pkts = -1; al = -1
    if (match($0, /"pkts_per_sec": [0-9.eE+-]+/))
        pkts = substr($0, RSTART + 16, RLENGTH - 16) + 0
    if (match($0, /"allocs_per_pkt": [0-9.eE+-]+/))
        al = substr($0, RSTART + 18, RLENGTH - 18) + 0
    if ($0 ~ /mode=perpkt/) perpkt = pkts
    if ($0 ~ /mode=batched/) { batched = pkts; batchedallocs = al }
}
END {
    if (perpkt + 0 <= 0 || batched + 0 <= 0) { print "FAIL: E11 A/B rows missing from BENCH_live.json"; exit 1 }
    speedup = batched / perpkt
    printf "live blast: %.0f -> %.0f pkts/s (%.2fx), batched allocs/pkt %.4f\n", perpkt, batched, speedup, batchedallocs
    bad = 0
    if (speedup < minspeed + 0) { printf "FAIL: batched speedup %.2fx below the %.1fx gate\n", speedup, minspeed; bad = 1 }
    if (batchedallocs >= 1.0) { printf "FAIL: batched allocs/pkt %.4f >= 1.0\n", batchedallocs; bad = 1 }
    exit bad
}
' BENCH_live.json && echo "live: batched >= ${SPEEDUP_MIN}x per-packet, allocs/pkt < 1.0"
