#!/bin/sh
# Runs the E10 many-session soak benchmark (BenchmarkE10_Scale) and distills
# the output into BENCH_scale.json: a meta header (go version, GOMAXPROCS,
# CPU model) plus one record per (size, run) with the soak metrics —
# pkts/s (wall), events/pkt, ns/pkt, allocs/pkt. Records are one JSON object
# per line so scripts/bench_compare.sh can diff runs with awk alone.
set -eu

cd "$(dirname "$0")/.."

COUNT="${COUNT:-2}"

go test -run '^$' -bench 'BenchmarkE10_Scale' -count="$COUNT" . | tee BENCH_scale.txt

GOVER=$(go version | awk '{print $3}')
MAXPROCS=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}
CPU=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

awk -v gover="$GOVER" -v maxprocs="$MAXPROCS" -v cpu="$CPU" '
BEGIN {
    printf "{\n  \"meta\": {\"go\": \"%s\", \"gomaxprocs\": %s, \"cpu\": \"%s\"},\n", gover, maxprocs, cpu
    print "  \"results\": ["
    first = 1
}
/^BenchmarkE10_Scale/ {
    name = $1
    pkts = ""; events = ""; nspkt = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "pkts/s")     pkts   = $(i-1)
        if ($i == "events/pkt") events = $(i-1)
        if ($i == "ns/pkt")     nspkt  = $(i-1)
        if ($i == "allocs/pkt") allocs = $(i-1)
    }
    if (pkts == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"pkts_per_sec\": %s, \"events_per_pkt\": %s, \"ns_per_pkt\": %s, \"allocs_per_pkt\": %s}", name, pkts, events, nspkt, allocs
}
END { print "\n  ]\n}" }
' BENCH_scale.txt > BENCH_scale.json

echo "wrote BENCH_scale.json ($(grep -c '"name"' BENCH_scale.json) samples)"

# The scale acceptance bar: events per delivered packet strictly below 1.0
# at every soak size.
awk '/"events_per_pkt"/ {
    if (match($0, /"events_per_pkt": [0-9.]+/)) {
        v = substr($0, RSTART + 18, RLENGTH - 18) + 0
        if (v >= 1.0) { bad = 1; print "FAIL: events/pkt >= 1.0 in: " $0 }
    }
}
END { exit bad }
' BENCH_scale.json && echo "scale: events/pkt < 1.0 at every soak size"
