#!/bin/sh
# Runs the E10 many-session soak benchmarks (BenchmarkE10_Scale and the
# GOMAXPROCS sweep BenchmarkE10_ScaleParallel) and distills the output into
# BENCH_scale.json: a meta header (go version, GOMAXPROCS, CPU model, exact
# commit) plus ONE record per benchmark name — the best of COUNT runs, where
# best means lowest ns/pkt (wall time is the only noisy axis; events/pkt and
# allocs/pkt are effectively deterministic). Records are one JSON object per
# line so scripts/bench_compare.sh can diff runs with awk alone.
#
# Parallel rows carry their gomaxprocs so a baseline recorded on an M-core
# machine is never silently compared against an N-core run of the same name.
set -eu

cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"

go test -run '^$' -bench 'BenchmarkE10_(Scale|Observed)' -count="$COUNT" . | tee BENCH_scale.txt

GOVER=$(go version | awk '{print $3}')
MAXPROCS=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}
CPU=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
git diff --quiet HEAD 2>/dev/null || COMMIT="${COMMIT}-dirty"

awk -v gover="$GOVER" -v maxprocs="$MAXPROCS" -v cpu="$CPU" -v commit="$COMMIT" '
BEGIN {
    printf "{\n  \"meta\": {\"go\": \"%s\", \"gomaxprocs\": %s, \"cpu\": \"%s\", \"commit\": \"%s\"},\n", gover, maxprocs, cpu, commit
    print "  \"results\": ["
}
/^BenchmarkE10_/ {
    name = $1
    pkts = ""; events = ""; nspkt = ""; allocs = ""; rowprocs = maxprocs
    for (i = 2; i <= NF; i++) {
        if ($i == "pkts/s")     pkts     = $(i-1)
        if ($i == "events/pkt") events   = $(i-1)
        if ($i == "ns/pkt")     nspkt    = $(i-1)
        if ($i == "allocs/pkt") allocs   = $(i-1)
        if ($i == "gomaxprocs") rowprocs = $(i-1) + 0
    }
    if (pkts == "") next
    if (events == "") events = "null"
    if (nspkt == "") nspkt = "null"
    if (allocs == "") allocs = "null"
    # Keep the best (lowest ns/pkt) of the COUNT runs per name.
    if (!(name in best) || nspkt + 0 < best[name]) {
        best[name] = nspkt + 0
        if (!(name in order)) { order[name] = ++n; names[n] = name }
        rec[name] = sprintf("    {\"name\": \"%s\", \"gomaxprocs\": %d, \"pkts_per_sec\": %s, \"events_per_pkt\": %s, \"ns_per_pkt\": %s, \"allocs_per_pkt\": %s}", \
            name, rowprocs, pkts, events, nspkt, allocs)
    }
}
END {
    for (i = 1; i <= n; i++) printf "%s%s\n", rec[names[i]], (i < n ? "," : "")
    print "  ]\n}"
}
' BENCH_scale.txt > BENCH_scale.json

echo "wrote BENCH_scale.json ($(grep -c '"name"' BENCH_scale.json) records, best of $COUNT runs)"

# The scale acceptance bars: kernel events per delivered packet strictly
# below 1.0 at every soak size, and heap allocations per delivered packet
# strictly below 1.0 at N=5000 (the datapath-pooling criterion; smaller
# sizes amortize per-session setup over too few packets to gate on).
awk '/"name"/ {
    ev = -1; al = -1
    if (match($0, /"events_per_pkt": [0-9.]+/))
        ev = substr($0, RSTART + 18, RLENGTH - 18) + 0
    if (match($0, /"allocs_per_pkt": [0-9.]+/))
        al = substr($0, RSTART + 18, RLENGTH - 18) + 0
    if (ev >= 1.0) { bad = 1; print "FAIL: events/pkt >= 1.0 in: " $0 }
    if ($0 ~ /N=5000/ && al >= 1.0) { bad = 1; print "FAIL: allocs/pkt >= 1.0 in: " $0 }
}
END { exit bad }
' BENCH_scale.json && echo "scale: events/pkt < 1.0 everywhere, allocs/pkt < 1.0 at N=5000"

# Observability overhead gate (best-of-COUNT rows, like everything above):
# the fully observed soak — shared repository, streaming recorders, HTTP
# endpoint under scrape, live /trace tail — must hold pkts/s within
# OBS_THRESHOLD percent (default 5) of the unobserved soak and keep heap
# allocations per delivered packet below 1.0.
OBS_THRESHOLD="${OBS_THRESHOLD:-5}"
awk -v thresh="$OBS_THRESHOLD" '
/"name"/ {
    pkts = -1; al = -1
    if (match($0, /"pkts_per_sec": [0-9.eE+-]+/))
        pkts = substr($0, RSTART + 16, RLENGTH - 16) + 0
    if (match($0, /"allocs_per_pkt": [0-9.eE+-]+/))
        al = substr($0, RSTART + 18, RLENGTH - 18) + 0
    if ($0 ~ /Observed\/mode=off/) off = pkts
    if ($0 ~ /Observed\/mode=on/) { on = pkts; onallocs = al }
}
END {
    if (off + 0 <= 0 || on + 0 <= 0) { print "FAIL: observed A/B rows missing from BENCH_scale.json"; exit 1 }
    delta = (off - on) / off * 100
    printf "observed soak: %.0f -> %.0f pkts/s (%+.1f%%), allocs/pkt %.3f\n", off, on, -delta, onallocs
    bad = 0
    if (delta > thresh + 0) { printf "FAIL: observed soak loses %.1f%% pkts/s (budget %s%%)\n", delta, thresh; bad = 1 }
    if (onallocs >= 1.0) { printf "FAIL: observed allocs/pkt %.3f >= 1.0\n", onallocs; bad = 1 }
    exit bad
}
' BENCH_scale.json && echo "scale: observed overhead within ${OBS_THRESHOLD}%, observed allocs/pkt < 1.0"
