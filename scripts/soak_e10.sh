#!/bin/sh
# The live-soak leak gate (`make soak`): runs the observed E10 soak as a real
# process serving its observability endpoint, attaches a live /trace tail
# from another process, and fails on any of
#
#   - result-fingerprint drift across iterations (includes p999 drift),
#   - RSS growth past the archive-aware allowance,
#   - dropped trace chunks or failed scrapes (gated inside the soak), or
#   - the tailed recording differing from the in-process archive.
#
# Knobs: SESSIONS (default 1000), ITERS (default 10), PREFIX (default SOAK_,
# also the output-file prefix — the CI smoke variant uses SMOKE_ with a tiny
# soak so PR runs stay fast).
set -eu

cd "$(dirname "$0")/.."

SESSIONS="${SESSIONS:-1000}"
ITERS="${ITERS:-10}"
PREFIX="${PREFIX:-SOAK_}"

mkdir -p bin
go build -o bin/adaptivebench ./cmd/adaptivebench
go build -o bin/adaptivetrace ./cmd/adaptivetrace

rm -f "${PREFIX}soak.log" "${PREFIX}archive.trace" "${PREFIX}tail.trace" \
    "${PREFIX}summary.json" "${PREFIX}metrics.json"

# The soak holds traffic (-wait-tail) until the tail client attaches, so the
# stream is captured from record zero and the post-run diff can be exact.
bin/adaptivebench -soak -sessions "$SESSIONS" -soak-iters "$ITERS" \
    -wait-tail 60s -trace-out "${PREFIX}archive.trace" -out-prefix "$PREFIX" \
    > "${PREFIX}soak.log" 2>&1 &
SOAK_PID=$!

ENDPOINT=""
i=0
while [ "$i" -lt 300 ]; do
    ENDPOINT=$(sed -n 's/^SOAK_ENDPOINT=//p' "${PREFIX}soak.log" 2>/dev/null || true)
    [ -n "$ENDPOINT" ] && break
    if ! kill -0 "$SOAK_PID" 2>/dev/null; then
        cat "${PREFIX}soak.log"
        echo "FAIL: soak exited before serving its endpoint"
        exit 1
    fi
    sleep 0.2
    i=$((i + 1))
done
if [ -z "$ENDPOINT" ]; then
    kill "$SOAK_PID" 2>/dev/null || true
    cat "${PREFIX}soak.log"
    echo "FAIL: no SOAK_ENDPOINT within 60s"
    exit 1
fi
echo "soak endpoint: $ENDPOINT"

# Tail the live stream; this blocks until the soak finishes its trace.
bin/adaptivetrace -tail "$ENDPOINT" -o "${PREFIX}tail.trace"

SOAK_RC=0
wait "$SOAK_PID" || SOAK_RC=$?
cat "${PREFIX}soak.log"
if [ "$SOAK_RC" -ne 0 ]; then
    echo "FAIL: soak exited $SOAK_RC"
    exit "$SOAK_RC"
fi

# The tailed recording must be byte-identical to what the node streamed.
bin/adaptivetrace -diff "${PREFIX}archive.trace" "${PREFIX}tail.trace"
echo "soak gate: PASS (${SESSIONS} sessions x ${ITERS} iterations)"
