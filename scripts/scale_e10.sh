#!/bin/sh
# Determinism gate for the scale path. Two independent checks:
#
#  1. The E10 many-session soak, run twice via cmd/adaptivebench, must render
#     byte-identical tables: sharded kernels (worker scheduling must not leak
#     into results) and batched delivery (drain order must be stable) both
#     feed this output.
#  2. The batched delivery path must produce exactly the delivery sequence of
#     the retired per-packet code path from the same seed — the A/B
#     equivalence test in internal/netsim.
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/adaptivebench -experiment E10 >FAULTS_e10_run1.txt
go run ./cmd/adaptivebench -experiment E10 >FAULTS_e10_run2.txt

if ! cmp -s FAULTS_e10_run1.txt FAULTS_e10_run2.txt; then
    echo "FAIL: two E10 soak runs differ" >&2
    diff FAULTS_e10_run1.txt FAULTS_e10_run2.txt >&2 || true
    exit 1
fi
cat FAULTS_e10_run1.txt

if ! awk '$1 ~ /^[0-9]+$/ && $5 + 0 >= 1.0 { exit 1 }' FAULTS_e10_run1.txt; then
    echo "FAIL: a soak size reported events/pkt >= 1.0" >&2
    exit 1
fi

go test -run 'TestBatchedMatchesPerPacketDelivery' ./internal/netsim/

echo "scale: E10 soak reproducible; batched delivery byte-equivalent to per-packet path"
