#!/bin/sh
# Determinism gate for the scale path. Three independent checks:
#
#  1. The E10 many-session soak, run twice via cmd/adaptivebench, must render
#     byte-identical tables: sharded kernels (worker scheduling must not leak
#     into results) and batched delivery (drain order must be stable) both
#     feed this output.
#  2. Two same-seed flight recordings of the soak (cmd/adaptivetrace) must be
#     record-for-record identical under trace.Diff — a far finer probe than
#     the table: every timer fire, link transmission, PDU, and delivery is
#     compared in virtual-time order, per shard.
#  3. The batched delivery path must produce exactly the delivery sequence of
#     the retired per-packet code path from the same seed — the A/B
#     equivalence test in internal/netsim.
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/adaptivebench -experiment E10 >FAULTS_e10_run1.txt
go run ./cmd/adaptivebench -experiment E10 >FAULTS_e10_run2.txt

if ! cmp -s FAULTS_e10_run1.txt FAULTS_e10_run2.txt; then
    echo "FAIL: two E10 soak runs differ" >&2
    diff FAULTS_e10_run1.txt FAULTS_e10_run2.txt >&2 || true
    exit 1
fi
cat FAULTS_e10_run1.txt

if ! awk '$1 ~ /^[0-9]+$/ && $5 + 0 >= 1.0 { exit 1 }' FAULTS_e10_run1.txt; then
    echo "FAIL: a soak size reported events/pkt >= 1.0" >&2
    exit 1
fi

# Flight-recorder determinism: trace the 1000-session soak twice and demand
# zero divergence. Sampling (1/16) keeps the rings covering the whole run so
# a divergence cannot hide behind a ring wrap.
go run ./cmd/adaptivetrace -record e10 -sessions 1000 -sample 16 -o FAULTS_e10_a.trace
go run ./cmd/adaptivetrace -record e10 -sessions 1000 -sample 16 -o FAULTS_e10_b.trace
if go run ./cmd/adaptivetrace -diff FAULTS_e10_a.trace FAULTS_e10_b.trace >FAULTS_e10_tracediff.txt 2>&1; then
    cat FAULTS_e10_tracediff.txt
else
    echo "FAIL: same-seed E10 flight recordings diverge" >&2
    cat FAULTS_e10_tracediff.txt >&2
    exit 1
fi

go test -run 'TestBatchedMatchesPerPacketDelivery' ./internal/netsim/

echo "scale: E10 soak reproducible; flight recordings identical; batched delivery byte-equivalent to per-packet path"
