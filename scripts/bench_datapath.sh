#!/bin/sh
# Runs the packet-path and kernel micro-benchmarks with -benchmem -count=5
# and distills the raw `go test` output into BENCH_datapath.json: a meta
# header (go version, GOMAXPROCS, CPU model) plus one object per
# (benchmark, run) with ns/op, B/op, and allocs/op — one object per line so
# scripts/bench_compare.sh can diff runs with awk alone.
set -eu

cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"

PATTERN='BenchmarkWireEncode$|BenchmarkWireEncodeTo|BenchmarkWireDecode$|BenchmarkWireDecodeInto|BenchmarkChecksums|BenchmarkMessagePushPop|BenchmarkMessageSplitClone|BenchmarkNetsimPacketForwarding|BenchmarkSimKernelEvents|BenchmarkKernelChurn'

go test -run '^$' -bench "$PATTERN" -benchmem -count="$COUNT" . | tee BENCH_datapath.txt

GOVER=$(go version | awk '{print $3}')
MAXPROCS=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}
CPU=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

awk -v gover="$GOVER" -v maxprocs="$MAXPROCS" -v cpu="$CPU" '
BEGIN {
    printf "{\n  \"meta\": {\"go\": \"%s\", \"gomaxprocs\": %s, \"cpu\": \"%s\"},\n", gover, maxprocs, cpu
    print "  \"results\": ["
    first = 1
}
/^Benchmark/ {
    name = $1; nsop = ""; bop = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     nsop   = $(i-1)
        if ($i == "B/op")      bop    = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (nsop == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, (bop == "" ? "null" : bop), (allocs == "" ? "null" : allocs)
}
END { print "\n  ]\n}" }
' BENCH_datapath.txt > BENCH_datapath.json

echo "wrote BENCH_datapath.json ($(grep -c '"name"' BENCH_datapath.json) samples)"
