#!/bin/sh
# Runs the packet-path and kernel micro-benchmarks with -benchmem -count=3
# and distills the raw `go test` output into BENCH_datapath.json: a meta
# header (go version, GOMAXPROCS, CPU model, exact commit) plus ONE object
# per benchmark name — the best (lowest ns/op) of the COUNT runs, since wall
# time is the only noisy axis and keeping the per-run spread just teaches
# the comparison script to forgive noise. One object per line so
# scripts/bench_compare.sh can diff runs with awk alone.
set -eu

cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"

PATTERN='BenchmarkWireEncode$|BenchmarkWireEncodeTo|BenchmarkWireDecode$|BenchmarkWireDecodeInto|BenchmarkChecksums|BenchmarkMessagePushPop|BenchmarkMessageSplitClone|BenchmarkNetsimPacketForwarding|BenchmarkSimKernelEvents|BenchmarkKernelChurn|BenchmarkE13_ArbiterGrant'

go test -run '^$' -bench "$PATTERN" -benchmem -count="$COUNT" . | tee BENCH_datapath.txt

GOVER=$(go version | awk '{print $3}')
MAXPROCS=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}
CPU=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
git diff --quiet HEAD 2>/dev/null || COMMIT="${COMMIT}-dirty"

awk -v gover="$GOVER" -v maxprocs="$MAXPROCS" -v cpu="$CPU" -v commit="$COMMIT" '
BEGIN {
    printf "{\n  \"meta\": {\"go\": \"%s\", \"gomaxprocs\": %s, \"cpu\": \"%s\", \"commit\": \"%s\"},\n", gover, maxprocs, cpu, commit
    print "  \"results\": ["
}
/^Benchmark/ {
    name = $1; nsop = ""; bop = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     nsop   = $(i-1)
        if ($i == "B/op")      bop    = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (nsop == "") next
    # Keep the best (lowest ns/op) of the COUNT runs per name.
    if (!(name in best) || nsop + 0 < best[name]) {
        best[name] = nsop + 0
        if (!(name in order)) { order[name] = ++n; names[n] = name }
        rec[name] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
            name, nsop, (bop == "" ? "null" : bop), (allocs == "" ? "null" : allocs))
    }
}
END {
    for (i = 1; i <= n; i++) printf "%s%s\n", rec[names[i]], (i < n ? "," : "")
    print "  ]\n}"
}
' BENCH_datapath.txt > BENCH_datapath.json

echo "wrote BENCH_datapath.json ($(grep -c '"name"' BENCH_datapath.json) records, best of $COUNT runs)"
