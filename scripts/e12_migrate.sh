#!/bin/sh
# E12 migration gate. Four checks:
#
#  1. The cross-host migration experiment, run twice via cmd/adaptivebench,
#     must render byte-identical tables — the controller's epoch grants,
#     the handoff record transfer, and the adopted session's resumed egress
#     must all be deterministic under the sim kernel.
#  2. The table itself must gate: every run row reports status "ok" (exact
#     delivery, exactly one migration, stale-epoch replay fenced) and the
#     rerun note confirms byte-identical delivered streams.
#  3. adaptivectl drives the same handoff end to end (sim and UDP loopback)
#     and exits nonzero unless the delivery/fencing gate passes.
#  4. The targeted migration tests: the public-API migration suite at the
#     repo root (mid-stream handoff, rollback, migration-under-loss table)
#     and the E12 sim/live parity tests.
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/adaptivebench -experiment E12 >FAULTS_e12_run1.txt
go run ./cmd/adaptivebench -experiment E12 >FAULTS_e12_run2.txt

if ! cmp -s FAULTS_e12_run1.txt FAULTS_e12_run2.txt; then
    echo "FAIL: two E12 migration runs differ" >&2
    diff FAULTS_e12_run1.txt FAULTS_e12_run2.txt >&2 || true
    exit 1
fi
cat FAULTS_e12_run1.txt

if ! grep -q 'same-seed reruns byte-identical: true' FAULTS_e12_run1.txt; then
    echo "FAIL: E12 reruns did not deliver byte-identical streams" >&2
    exit 1
fi
if awk 'NR > 1 && $1 ~ /^sim#/ && $NF != "ok" { bad = 1 } END { exit bad }' FAULTS_e12_run1.txt; then :; else
    echo "FAIL: an E12 run row reported a failed gate" >&2
    exit 1
fi

go run ./cmd/adaptivectl migrate -seed 12 >FAULTS_e12_ctl_sim.txt
cat FAULTS_e12_ctl_sim.txt
go run ./cmd/adaptivectl migrate -live -seed 12 >FAULTS_e12_ctl_live.txt
cat FAULTS_e12_ctl_live.txt

go test -race -count=1 -run 'TestMigrate' .
go test -race -count=1 -run 'TestE12' ./internal/experiment/
go test -race -count=1 -run 'TestScenarioMigration|TestMigrateDocRoundTrip' ./internal/scenario/

echo "e12: migration deterministic; delivery exact across the handoff; stale epochs fenced"
