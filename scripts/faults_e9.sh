#!/bin/sh
# Runs the E9 fault-injection sweep twice and diffs the output: the sweep is
# driven entirely by deterministic FaultPlans, so two runs must be identical
# byte-for-byte. E9 itself additionally reruns its adaptive burst-loss case
# with the same seed and compares the full UNITES metric snapshots; look for
# the "same-seed reproducibility ...: true" note and at least one recovery
# segue in the "policy segues under burst loss" note.
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/adaptivebench -experiment E9 >FAULTS_e9_run1.txt
go run ./cmd/adaptivebench -experiment E9 >FAULTS_e9_run2.txt

if ! cmp -s FAULTS_e9_run1.txt FAULTS_e9_run2.txt; then
    echo "FAIL: two E9 runs differ" >&2
    diff FAULTS_e9_run1.txt FAULTS_e9_run2.txt >&2 || true
    exit 1
fi
cat FAULTS_e9_run1.txt

if ! grep -q "reproducibility.*true" FAULTS_e9_run1.txt; then
    echo "FAIL: E9 did not report byte-identical same-seed UNITES snapshots" >&2
    exit 1
fi
if ! grep -q "policy segues under burst loss.*recovery\." FAULTS_e9_run1.txt; then
    echo "FAIL: E9 recorded no policy-driven recovery segue under burst loss" >&2
    exit 1
fi
echo "faults: E9 sweep reproducible; policy segue recorded in UNITES"
