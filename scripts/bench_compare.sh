#!/bin/sh
# Compares freshly generated BENCH_*.json files against the committed
# baselines under scripts/baseline/ and FAILS (non-zero exit) on regression.
#
# Two metrics are enforced per benchmark name, best (minimum) across runs:
#
#   time   — ns_per_op (data-path suite) / ns_per_pkt (scale soak).
#            Threshold TIME_THRESHOLD percent, default 60: machines differ,
#            so the default only catches gross regressions; CI overrides it
#            to something looser, a developer chasing a regression sets it
#            tight.
#   allocs — allocs_per_op / allocs_per_pkt. Threshold ALLOC_THRESHOLD
#            percent, default 10. Allocation counts are machine-independent,
#            so this is the hard gate: any new allocation on a
#            zero-allocation path fails regardless of threshold.
#
#   ./scripts/bench_compare.sh
#   TIME_THRESHOLD=200 ./scripts/bench_compare.sh   # CI: noisy shared runner
#   FAIL_THRESHOLD=50  ./scripts/bench_compare.sh   # legacy alias for TIME_THRESHOLD
set -eu

cd "$(dirname "$0")/.."

TIME_THRESHOLD="${TIME_THRESHOLD:-${FAIL_THRESHOLD:-60}}"
ALLOC_THRESHOLD="${ALLOC_THRESHOLD:-10}"
STATUS=0

compare() {
    current=$1
    baseline=$2
    time_metric=$3
    alloc_metric=$4
    [ -f "$current" ] || { echo "skip: $current not generated (run make bench / make bench-scale)"; return; }
    [ -f "$baseline" ] || { echo "skip: $baseline missing"; return; }
    echo "== $current vs $baseline ($time_metric <= +${TIME_THRESHOLD}%, $alloc_metric <= +${ALLOC_THRESHOLD}%, best-of-runs) =="
    awk -v tmetric="\"$time_metric\":" -v ametric="\"$alloc_metric\":" \
        -v tthresh="$TIME_THRESHOLD" -v athresh="$ALLOC_THRESHOLD" '
    function best(file, tmins, amins,   line, name, v) {
        while ((getline line < file) > 0) {
            if (line !~ /"name"/) continue
            if (match(line, /"name": "[^"]+"/)) {
                name = substr(line, RSTART + 9, RLENGTH - 10)
            } else continue
            if (match(line, tmetric " [0-9.eE+-]+")) {
                v = substr(line, RSTART + length(tmetric) + 1, RLENGTH - length(tmetric) - 1) + 0
                if (!(name in tmins) || v < tmins[name]) tmins[name] = v
            }
            if (match(line, ametric " [0-9.eE+-]+")) {
                v = substr(line, RSTART + length(ametric) + 1, RLENGTH - length(ametric) - 1) + 0
                if (!(name in amins) || v < amins[name]) amins[name] = v
            }
        }
        close(file)
    }
    BEGIN {
        best(ARGV[1], baset, basea)
        best(ARGV[2], curt, cura)
        bad = 0
        for (name in curt) {
            if (!(name in baset)) { printf "%-60s %12.1f  (new)\n", name, curt[name]; continue }
            tdelta = baset[name] > 0 ? (curt[name] - baset[name]) / baset[name] * 100 : 0
            flag = ""
            if (tdelta > tthresh + 0) { flag = flag "  TIME-REGRESSION"; bad = 1 }
            adelta = 0
            if (name in cura && name in basea) {
                if (basea[name] > 0) adelta = (cura[name] - basea[name]) / basea[name] * 100
                else if (cura[name] > 0) adelta = 1e9  # new allocs on a zero-alloc path
                if (adelta > athresh + 0) { flag = flag "  ALLOC-REGRESSION"; bad = 1 }
            }
            printf "%-60s %12.1f -> %12.1f  %+7.1f%%  allocs %g -> %g%s\n", \
                name, baset[name], curt[name], tdelta, basea[name], cura[name], flag
        }
        for (name in baset) if (!(name in curt)) printf "%-60s dropped from current run\n", name
        exit bad
    }' "$baseline" "$current" || STATUS=1
}

compare BENCH_datapath.json scripts/baseline/BENCH_datapath.json ns_per_op allocs_per_op
compare BENCH_scale.json scripts/baseline/BENCH_scale.json ns_per_pkt allocs_per_pkt

[ "$STATUS" -eq 0 ] || echo "bench-compare: REGRESSION detected (see flags above)" >&2
exit $STATUS
