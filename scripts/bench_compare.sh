#!/bin/sh
# Compares freshly generated BENCH_*.json files against the committed
# baselines under scripts/baseline/ and FAILS (non-zero exit) on regression.
#
# Three metrics are enforced per benchmark name, best across runs (the JSON
# files already hold one best-of-COUNT record per name):
#
#   time   — ns_per_op (data-path suite) / ns_per_pkt (scale soak), lower is
#            better. Threshold TIME_THRESHOLD percent, default 60: machines
#            differ, so the default only catches gross regressions; CI
#            overrides it to something looser, a developer chasing a
#            regression sets it tight.
#   rate   — pkts_per_sec (scale soak only), HIGHER is better: a row fails
#            when the current rate drops more than RATE_THRESHOLD percent
#            below baseline (default 40). This is the throughput gate the
#            ns/pkt gate mirrors; keeping both catches bookkeeping errors in
#            either derivation.
#   allocs — allocs_per_op / allocs_per_pkt, lower is better. Threshold
#            ALLOC_THRESHOLD percent, default 10. Allocation counts are
#            machine-independent, so this is the hard gate: any new
#            allocation on a zero-allocation path fails regardless of
#            threshold.
#
# Scale rows carry a gomaxprocs field; rows whose gomaxprocs differs from
# the baseline's are reported but never failed (a 1-core baseline says
# nothing about a 16-core run of the parallel sweep).
#
#   ./scripts/bench_compare.sh
#   TIME_THRESHOLD=200 ./scripts/bench_compare.sh   # CI: noisy shared runner
#   FAIL_THRESHOLD=50  ./scripts/bench_compare.sh   # legacy alias for TIME_THRESHOLD
set -eu

cd "$(dirname "$0")/.."

TIME_THRESHOLD="${TIME_THRESHOLD:-${FAIL_THRESHOLD:-60}}"
RATE_THRESHOLD="${RATE_THRESHOLD:-40}"
ALLOC_THRESHOLD="${ALLOC_THRESHOLD:-10}"
STATUS=0

compare() {
    current=$1
    baseline=$2
    time_metric=$3
    alloc_metric=$4
    rate_metric=$5
    [ -f "$current" ] || { echo "skip: $current not generated (run make bench / make bench-scale)"; return; }
    [ -f "$baseline" ] || { echo "skip: $baseline missing"; return; }
    echo "== $current vs $baseline ($time_metric <= +${TIME_THRESHOLD}%, ${rate_metric:-no-rate} >= -${RATE_THRESHOLD}%, $alloc_metric <= +${ALLOC_THRESHOLD}%) =="
    awk -v tmetric="\"$time_metric\":" -v ametric="\"$alloc_metric\":" -v rmetric="\"${rate_metric:-__none__}\":" \
        -v tthresh="$TIME_THRESHOLD" -v athresh="$ALLOC_THRESHOLD" -v rthresh="$RATE_THRESHOLD" '
    function grab(line, metric,   v) {
        if (match(line, metric " [0-9.eE+-]+"))
            return substr(line, RSTART + length(metric) + 1, RLENGTH - length(metric) - 1) + 0
        return -1
    }
    function best(file, tmins, amins, rmaxs, procs,   line, name, v) {
        while ((getline line < file) > 0) {
            if (line !~ /"name"/) continue
            if (match(line, /"name": "[^"]+"/)) {
                name = substr(line, RSTART + 9, RLENGTH - 10)
            } else continue
            v = grab(line, tmetric); if (v >= 0 && (!(name in tmins) || v < tmins[name])) tmins[name] = v
            v = grab(line, ametric); if (v >= 0 && (!(name in amins) || v < amins[name])) amins[name] = v
            v = grab(line, rmetric); if (v >= 0 && (!(name in rmaxs) || v > rmaxs[name])) rmaxs[name] = v
            v = grab(line, "\"gomaxprocs\":"); if (v >= 0) procs[name] = v
        }
        close(file)
    }
    BEGIN {
        best(ARGV[1], baset, basea, baser, basep)
        best(ARGV[2], curt, cura, curr, curp)
        bad = 0
        for (name in curt) {
            if (!(name in baset)) { printf "%-60s %12.1f  (new)\n", name, curt[name]; continue }
            if ((name in curp) && (name in basep) && curp[name] != basep[name]) {
                printf "%-60s gomaxprocs %d -> %d: not comparable, skipped\n", name, basep[name], curp[name]
                continue
            }
            tdelta = baset[name] > 0 ? (curt[name] - baset[name]) / baset[name] * 100 : 0
            flag = ""
            if (tdelta > tthresh + 0) { flag = flag "  TIME-REGRESSION"; bad = 1 }
            rdelta = 0
            if (name in curr && name in baser && baser[name] > 0) {
                rdelta = (curr[name] - baser[name]) / baser[name] * 100
                if (-rdelta > rthresh + 0) { flag = flag "  RATE-REGRESSION"; bad = 1 }
            }
            adelta = 0
            if (name in cura && name in basea) {
                if (basea[name] > 0) adelta = (cura[name] - basea[name]) / basea[name] * 100
                else if (cura[name] > 0) adelta = 1e9  # new allocs on a zero-alloc path
                if (adelta > athresh + 0) { flag = flag "  ALLOC-REGRESSION"; bad = 1 }
            }
            procnote = (name in curp) ? sprintf("  procs=%d", curp[name]) : ""
            if (name in curr)
                printf "%-60s %12.1f -> %12.1f  %+7.1f%%  rate %+7.1f%%  allocs %g -> %g%s%s\n", \
                    name, baset[name], curt[name], tdelta, rdelta, basea[name], cura[name], procnote, flag
            else
                printf "%-60s %12.1f -> %12.1f  %+7.1f%%  allocs %g -> %g%s%s\n", \
                    name, baset[name], curt[name], tdelta, basea[name], cura[name], procnote, flag
        }
        for (name in baset) if (!(name in curt)) printf "%-60s dropped from current run\n", name
        exit bad
    }' "$baseline" "$current" || STATUS=1
}

compare BENCH_datapath.json scripts/baseline/BENCH_datapath.json ns_per_op allocs_per_op ""
compare BENCH_scale.json scripts/baseline/BENCH_scale.json ns_per_pkt allocs_per_pkt pkts_per_sec
compare BENCH_live.json scripts/baseline/BENCH_live.json ns_per_pkt allocs_per_pkt pkts_per_sec

[ "$STATUS" -eq 0 ] || echo "bench-compare: REGRESSION detected (see flags above)" >&2
exit $STATUS
