#!/bin/sh
# Compares a freshly generated BENCH_*.json against the committed baselines
# under scripts/baseline/. For every benchmark name the best (minimum) time
# metric across runs is compared — ns_per_op for the data-path suite,
# ns_per_pkt for the scale soak — and the percentage delta is printed.
#
#   ./scripts/bench_compare.sh                  # compare whatever exists
#   FAIL_THRESHOLD=50 ./scripts/bench_compare.sh  # exit 1 past +50%
#
# Without FAIL_THRESHOLD the script is informational: machines differ, so
# CI only records the table while a developer chasing a regression sets the
# threshold.
set -eu

cd "$(dirname "$0")/.."

THRESHOLD="${FAIL_THRESHOLD:-}"
STATUS=0

compare() {
    current=$1
    baseline=$2
    metric=$3
    [ -f "$current" ] || { echo "skip: $current not generated (run make bench / make bench-scale)"; return; }
    [ -f "$baseline" ] || { echo "skip: $baseline missing"; return; }
    echo "== $current vs $baseline ($metric, best-of-runs) =="
    awk -v metric="\"$metric\":" -v threshold="${THRESHOLD:-0}" '
    function best(file, mins,   line, name, v) {
        while ((getline line < file) > 0) {
            if (line !~ /"name"/) continue
            if (match(line, /"name": "[^"]+"/)) {
                name = substr(line, RSTART + 9, RLENGTH - 10)
            } else continue
            if (match(line, metric " [0-9.eE+-]+")) {
                v = substr(line, RSTART + length(metric) + 1, RLENGTH - length(metric) - 1) + 0
                if (!(name in mins) || v < mins[name]) mins[name] = v
            }
        }
        close(file)
    }
    BEGIN {
        best(ARGV[1], base)
        best(ARGV[2], cur)
        bad = 0
        for (name in cur) {
            if (!(name in base)) { printf "%-60s %12.1f  (new)\n", name, cur[name]; continue }
            delta = base[name] > 0 ? (cur[name] - base[name]) / base[name] * 100 : 0
            flag = ""
            if (threshold + 0 > 0 && delta > threshold + 0) { flag = "  REGRESSION"; bad = 1 }
            printf "%-60s %12.1f -> %12.1f  %+7.1f%%%s\n", name, base[name], cur[name], delta, flag
        }
        for (name in base) if (!(name in cur)) printf "%-60s dropped from current run\n", name
        exit bad
    }' "$baseline" "$current" || STATUS=1
}

compare BENCH_datapath.json scripts/baseline/BENCH_datapath.json ns_per_op
compare BENCH_scale.json scripts/baseline/BENCH_scale.json ns_per_pkt

exit $STATUS
