#!/bin/sh
# E13 bandwidth-arbiter gate. Four checks:
#
#  1. The shared-bottleneck experiment, run twice via cmd/adaptivebench,
#     must render byte-identical tables — the arbiter's AIMD estimate, the
#     per-class water-fill, the grant callbacks, and the video ladder's
#     downshift/upshift sequence must all be deterministic under the sim
#     kernel.
#  2. The table itself must gate: the arbitrated arm reports "gates
#     (arbitrated arm): ok" (Jain >= 0.9, isochronous p99 improved over the
#     isolated arm, aggregate goodput held, ladder engaged) and the rerun
#     note confirms byte-identical fingerprints.
#  3. The grant hot path stays allocation-free: BenchmarkE13_ArbiterGrant
#     (one Observe plus a full Reallocate per iteration) must report
#     0 allocs/op — the < 1 alloc/pkt acceptance gate, enforced exactly.
#  4. The targeted arbiter tests under the race detector: the public-API
#     mixed-session governance test, the E13 sim/determinism/live tests,
#     and the internal estimator/allocator suite.
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/adaptivebench -experiment E13 >FAULTS_e13_run1.txt
go run ./cmd/adaptivebench -experiment E13 >FAULTS_e13_run2.txt

if ! cmp -s FAULTS_e13_run1.txt FAULTS_e13_run2.txt; then
    echo "FAIL: two E13 arbiter runs differ" >&2
    diff FAULTS_e13_run1.txt FAULTS_e13_run2.txt >&2 || true
    exit 1
fi
cat FAULTS_e13_run1.txt

if ! grep -q 'same-seed reruns byte-identical: true' FAULTS_e13_run1.txt; then
    echo "FAIL: E13 same-seed reruns diverged" >&2
    exit 1
fi
if ! grep -q 'gates (arbitrated arm): ok' FAULTS_e13_run1.txt; then
    echo "FAIL: E13 arbitrated arm failed its gates" >&2
    exit 1
fi

go test -run '^$' -bench 'BenchmarkE13_ArbiterGrant' -benchmem -count=1 . | tee FAULTS_e13_bench.txt
if ! awk '$1 == "BenchmarkE13_ArbiterGrant" { for (i = 2; i <= NF; i++) if ($i == "allocs/op") { exit ($(i-1) + 0 != 0) } exit 1 }' FAULTS_e13_bench.txt; then
    echo "FAIL: arbiter grant path allocates (must be 0 allocs/op)" >&2
    exit 1
fi

go test -race -count=1 -run 'TestArbiterGovernsMixedSessions' .
go test -race -count=1 -run 'TestE13' ./internal/experiment/
go test -race -count=1 ./internal/arbiter/

echo "e13: arbiter deterministic; fairness/latency/goodput gates hold; grant path allocation-free"
