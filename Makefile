GO ?= go

.PHONY: build test verify bench faults clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: build, vet, tests, and the race detector.
# staticcheck runs when installed (no network fetch in the gate); any
# finding fails the build.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	$(GO) test ./...
	$(GO) test -race ./...

# faults runs the E9 fault-injection sweep twice and verifies the two runs
# produce identical output (the experiment itself additionally compares the
# UNITES snapshots of two same-seed runs byte-for-byte).
faults:
	./scripts/faults_e9.sh

# bench runs the data-path micro-benchmarks (packet codec, message pool,
# netsim forwarding, sim kernel) 5 times with allocation stats and writes
# the raw output plus a JSON summary to BENCH_datapath.json.
bench:
	./scripts/bench_datapath.sh

clean:
	rm -f BENCH_datapath.json BENCH_datapath.txt FAULTS_e9_run1.txt FAULTS_e9_run2.txt
