GO ?= go

.PHONY: build test verify live bench bench-scale bench-live bench-compare faults e12 e13 trace soak soak-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: build, vet, tests, and the race detector.
# staticcheck runs when installed (no network fetch in the gate); any
# finding fails the build.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	$(GO) test ./...
	$(GO) test -race ./...
	$(MAKE) soak-smoke

# live runs the E-series parity scenarios over real UDP loopback sockets
# (segue mid-stream, seeded impairment) under the race detector, plus the
# udpnet lifecycle stress tests: the sim and live runs of each scenario must
# deliver byte-identical streams with zero data loss.
live:
	$(GO) test -race -count=1 -v -run 'TestLive' ./internal/experiment/
	$(GO) test -race -count=1 ./internal/udpnet/ ./internal/impair/

# faults runs the deterministic sweeps twice each and verifies the runs are
# byte-identical: the E9 fault-injection sweep (which also compares UNITES
# snapshots of two same-seed runs) and the E10 scale soak (sharded kernels +
# batched delivery, including the batched-vs-per-packet A/B equivalence).
faults:
	./scripts/faults_e9.sh
	./scripts/scale_e10.sh

# e12 is the cross-host migration gate: the E12 experiment run twice and
# byte-compared, the adaptivectl handoff in both environments (sim + UDP
# loopback, each gating exact delivery and stale-epoch fencing), and the
# targeted migration test suites under the race detector.
e12:
	./scripts/e12_migrate.sh

# e13 is the bandwidth-arbiter gate: the shared-bottleneck experiment run
# twice and byte-compared (fairness, isochronous latency, and goodput gates
# inside), the allocation-free grant-path benchmark, and the targeted
# arbiter test suites under the race detector.
e13:
	./scripts/e13_arbiter.sh

# bench runs the data-path micro-benchmarks (packet codec, message pool,
# netsim forwarding, sim kernel) 5 times with allocation stats and writes
# the raw output plus a JSON summary to BENCH_datapath.json.
bench:
	./scripts/bench_datapath.sh

# bench-scale runs the E10 many-session soak benchmark and writes
# BENCH_scale.json (pkts/s, events/pkt, ns/pkt, allocs/pkt per soak size,
# with go version / GOMAXPROCS / CPU metadata).
bench-scale:
	./scripts/bench_scale.sh

# bench-live runs the E11 live line-rate blast over UDP loopback in both
# provider configurations (per-packet vs batched recvmmsg/sendmmsg) and
# writes BENCH_live.json. The script gates A/B within the run: batched
# must reach >= 2x the per-packet packet rate and hold allocs/pkt < 1.0.
bench-live:
	./scripts/bench_live.sh

# bench-compare diffs freshly generated BENCH_*.json against the committed
# baselines under scripts/baseline/ and fails on time or allocation
# regressions (TIME_THRESHOLD / ALLOC_THRESHOLD override the percent gates).
bench-compare:
	./scripts/bench_compare.sh

# trace flight-records the E3 policy-segue run, renders it to Chrome
# trace-event JSON (load TRACE_e3.json in chrome://tracing or
# ui.perfetto.dev), and prints the per-kind summary. 1/16 sampling keeps the
# whole 10-minute run inside the ring, so the segue markers survive.
trace:
	$(GO) run ./cmd/adaptivetrace -record e3 -sample 16 -o TRACE_e3.trace
	$(GO) run ./cmd/adaptivetrace -chrome TRACE_e3.json -spans TRACE_e3.trace
	$(GO) run ./cmd/adaptivetrace -summary TRACE_e3.trace

# soak is the live-observability leak gate: a long observed E10 soak served
# as a real process (adaptivebench -soak), scraped over HTTP and tailed by a
# separate adaptivetrace process, gating on RSS growth, result-fingerprint
# drift (p999 included), dropped trace chunks, and tail-vs-archive trace
# identity. SESSIONS/ITERS scale it (defaults 1000 x 10).
soak:
	./scripts/soak_e10.sh

# soak-smoke is the verify-sized variant: the same end-to-end loop (serve,
# scrape, tail, diff) at a size that finishes in seconds. It is the
# endpoint's smoke test, not a leak gate.
soak-smoke:
	SESSIONS=100 ITERS=2 PREFIX=SMOKE_ ./scripts/soak_e10.sh

clean:
	rm -f BENCH_* FAULTS_* TRACE_* SOAK_* SMOKE_* results_all.txt
	rm -rf bin
