GO ?= go

.PHONY: build test verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: build, vet, tests, and the race detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./...

# bench runs the data-path micro-benchmarks (packet codec, message pool,
# netsim forwarding, sim kernel) 5 times with allocation stats and writes
# the raw output plus a JSON summary to BENCH_datapath.json.
bench:
	./scripts/bench_datapath.sh

clean:
	rm -f BENCH_datapath.json BENCH_datapath.txt
