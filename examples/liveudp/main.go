// Live UDP: the identical ADAPTIVE stack over real sockets.
//
// Every other example (and every experiment) runs against the deterministic
// simulator; this one swaps the provider for internal/udpnet — real loopback
// UDP datagrams, real wall-clock timers — without changing a line of
// protocol code. It transfers 1 MB reliably through the batched
// recvmmsg/sendmmsg datapath, publishes the provider's batch counters on
// the node's observability endpoint, and prints the measured result plus
// the scraped udpnet metrics.
//
//	go run ./examples/liveudp
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"adaptive"
	"adaptive/internal/udpnet"
)

func main() {
	provider := udpnet.New(
		udpnet.WithSocketBuffers(4<<20, 4<<20),       // several MB for high-rate loopback
		udpnet.WithQueueLen(8192),                    // bounded loop queue; overflow = counted drops
		udpnet.WithBatch(32),                         // recvmmsg/sendmmsg up to 32 datagrams per syscall
		udpnet.WithFlushWindow(200*time.Microsecond), // sends coalesce for at most 200 µs
	)
	defer provider.Close()

	sender, err := adaptive.NewNode(adaptive.WithProvider(provider), adaptive.WithHost(1), adaptive.WithName("udp-sender"),
		// The provider's batch counters ride the node's observability
		// endpoint: scrape /metrics and the udpnet.* gauges are there.
		adaptive.WithObservability(adaptive.Observe{
			Listen:   "127.0.0.1:0",
			Counters: provider.MetricCounters(),
		}))
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := adaptive.NewNode(adaptive.WithProvider(provider), adaptive.WithHost(2), adaptive.WithName("udp-receiver"))
	if err != nil {
		log.Fatal(err)
	}

	payload := bytes.Repeat([]byte("real sockets, same transport system. "), 28000) // ~1 MB
	done := make(chan []byte, 1)

	// All interaction with connections happens on the provider's event
	// loop (the same single-threaded discipline the simulator enforces).
	provider.Wait(func() {
		var got []byte
		receiver.Listen(9000, nil, func(c *adaptive.Conn) {
			fmt.Printf("receiver: accepted %08x, spec %v\n", c.ConnID(), c.Spec())
			c.OnReceive(func(data []byte, eom bool) {
				got = append(got, data...)
				if len(got) >= len(payload) {
					select {
					case done <- got:
					default:
					}
				}
			})
		})
	})

	start := time.Now()
	provider.Wait(func() {
		conn, err := sender.Dial(&adaptive.ACD{
			Participants: []adaptive.Addr{receiver.Addr()},
			RemotePort:   9000,
			Quant:        adaptive.QuantQoS{AvgThroughputBps: 100e6},
			Qual:         adaptive.QualQoS{Ordered: true},
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sender: dialed with spec %v\n", conn.Spec())
		if err := conn.Send(payload); err != nil {
			log.Fatal(err)
		}
	})

	select {
	case got := <-done:
		elapsed := time.Since(start)
		fmt.Printf("\ntransferred %d bytes over loopback UDP in %v (%.1f Mbps)\n",
			len(got), elapsed.Round(time.Millisecond),
			float64(len(got))*8/elapsed.Seconds()/1e6)
		fmt.Printf("intact: %v, loop-queue drops: %d\n",
			bytes.Equal(got, payload), provider.DroppedPosts())
		if !bytes.Equal(got, payload) {
			log.Fatal("corruption over UDP")
		}
		printUDPMetrics(sender.Observability().Addr())
	case <-time.After(30 * time.Second):
		log.Fatal("transfer timed out")
	}
}

// printUDPMetrics scrapes the node's Prometheus endpoint and echoes the
// udpnet_* lines — the batch datapath as an external monitor sees it.
func printUDPMetrics(addr string) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		log.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	fmt.Println("\nudpnet counters from /metrics:")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "adaptive_udpnet_") {
			fmt.Printf("  %s\n", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("scrape read: %v", err)
	}
}
