// Quickstart: a reliable file transfer over ADAPTIVE.
//
// Two hosts are connected by a simulated 10 Mbps WAN with 1% packet loss.
// The application states *what it needs* in an ADAPTIVE Communication
// Descriptor; MANTTS selects a Transport Service Class, derives the Session
// Configuration Specification, and TKO synthesizes the session. The program
// prints the configuration that was derived and the delivered result.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"adaptive"
	"adaptive/internal/netsim"
	"adaptive/internal/sim"
)

func main() {
	// --- 1. Build a network (deterministic simulator, 10 Mbps, 20 ms RTT,
	// 1% loss — a congested early-90s WAN). ---
	kernel := sim.NewKernel(42)
	network := netsim.New(kernel)
	hostA, hostB := network.AddHost(), network.AddHost()
	link := netsim.LinkConfig{Bandwidth: 10e6, PropDelay: 10 * time.Millisecond, MTU: 1500, DropRate: 0.01}
	network.SetRoute(hostA.ID(), hostB.ID(), network.NewLink(link))
	network.SetRoute(hostB.ID(), hostA.ID(), network.NewLink(link))

	// --- 2. Bring up an ADAPTIVE node on each host. ---
	sender, err := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(hostA.ID()), adaptive.WithName("sender"))
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(hostB.ID()), adaptive.WithName("receiver"))
	if err != nil {
		log.Fatal(err)
	}

	// --- 3. Receiver listens; sender dials with an ACD describing a bulk
	// reliable transfer. ---
	var got []byte
	var doneAt time.Duration
	file := bytes.Repeat([]byte("ADAPTIVE reproduces itself. "), 64*1024) // ~1.8 MB
	receiver.Listen(21, nil, func(c *adaptive.Conn) {
		fmt.Printf("receiver: accepted connection %08x with spec %v\n", c.ConnID(), c.Spec())
		c.OnReceive(func(data []byte, eom bool) {
			got = append(got, data...)
			if len(got) == len(file) {
				doneAt = kernel.Now()
			}
		})
	})

	conn, err := sender.Dial(&adaptive.ACD{
		Participants: []adaptive.Addr{receiver.Addr()},
		RemotePort:   21,
		Quant: adaptive.QuantQoS{
			AvgThroughputBps: 2e6, // "moderate" by Table 1 standards
			LossTolerance:    0,   // a file: every byte matters
		},
		Qual: adaptive.QualQoS{Ordered: true, DupSensitive: true},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	tsc, _ := conn.TSC()
	fmt.Printf("sender: MANTTS classified the flow as %q\n", tsc)
	fmt.Printf("sender: derived configuration %v\n", conn.Spec())

	if err := conn.Send(file); err != nil {
		log.Fatal(err)
	}
	conn.Close() // graceful: drains acknowledged data first

	// --- 4. Run the simulation to quiescence and report. ---
	kernel.RunUntil(2 * time.Minute)
	st := conn.Stats()
	fmt.Printf("\ntransferred %d bytes in %v of simulated time\n", len(got), doneAt)
	fmt.Printf("intact: %v | PDUs sent: %d | retransmissions: %d (the 1%% loss at work)\n",
		bytes.Equal(got, file), st.SentPDUs, st.Retransmissions)
	fmt.Printf("goodput: %.2f Mbps on a 10 Mbps, 1%%-loss link\n",
		float64(len(got))*8/doneAt.Seconds()/1e6)
	if !bytes.Equal(got, file) {
		log.Fatal("transfer corrupted")
	}
}
