// Teleconference: multicast voice with membership churn and run-time
// reconfiguration — the paper's motivating dynamic application ("a
// tele-conferencing application may switch between unicast and multicast as
// participants join and leave the conversation", §2.1B).
//
// One speaker streams 50 voice frames/second to a multicast group. Two
// listeners are present from the start; a third joins live, one leaves, and
// mid-call the MANTTS policy tightens FEC protection when measured loss
// crosses the ACD's TSA threshold.
//
//	go run ./examples/teleconference
package main

import (
	"fmt"
	"log"
	"time"

	"adaptive"
	"adaptive/internal/netsim"
	"adaptive/internal/sim"
	"adaptive/internal/workload"
)

func main() {
	kernel := sim.NewKernel(7)
	network := netsim.New(kernel)

	// Speaker + three listeners on a 10 Mbps switched LAN with a slightly
	// lossy segment toward listener 2.
	hosts := make([]*netsim.Host, 4)
	nodes := make([]*adaptive.Node, 4)
	for i := range hosts {
		hosts[i] = network.AddHost()
	}
	for i := range hosts {
		for j := range hosts {
			if i == j {
				continue
			}
			cfg := netsim.LinkConfig{Bandwidth: 10e6, PropDelay: time.Millisecond, MTU: 1500}
			if j == 2 {
				cfg.DropRate = 0.03 // the flaky wing of the building
			}
			network.SetRoute(hosts[i].ID(), hosts[j].ID(), network.NewLink(cfg))
		}
	}
	for i := range hosts {
		n, err := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(hosts[i].ID()), adaptive.WithSeed(int64(i)))
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = n
	}

	// Network-level group; hosts 1 and 2 are members at call start.
	group := network.NewGroup()
	network.Join(group, hosts[1].ID())
	network.Join(group, hosts[2].ID())

	// Listeners install meters when invited into the call.
	meters := make([]*workload.Meter, 4)
	for i := 1; i <= 3; i++ {
		i := i
		meters[i] = workload.NewMeter(kernel)
		nodes[i].OnMulticastJoin(func(c *adaptive.Conn, g adaptive.HostID) {
			fmt.Printf("[%8v] host %d joined the call (group %v, spec %v)\n", kernel.Now(), i, g, c.Spec())
			c.OnDelivery(meters[i].OnDeliver)
		})
	}

	// The speaker's ACD: interactive isochronous voice with a TSA rule
	// that tightens FEC when loss is measured above 2%.
	speaker := nodes[0]
	acd := &adaptive.ACD{
		Participants: []adaptive.Addr{
			{Host: group, Port: speaker.Addr().Port}, // group first
			nodes[1].Addr(), nodes[2].Addr(),
		},
		RemotePort: 5004,
		Quant: adaptive.QuantQoS{
			AvgThroughputBps: 192e3,
			MaxLatency:       150 * time.Millisecond,
			MaxJitter:        10 * time.Millisecond,
			LossTolerance:    0.05,
		},
		TSA: []adaptive.Rule{{
			Cond:    adaptive.Cond{Metric: adaptive.MetricLossRate, Op: adaptive.OpGT, Threshold: 0.02},
			Action:  adaptive.Action{Kind: adaptive.ActNotifyApp, Note: "loss above 2%, consider tightening FEC"},
			OneShot: true,
		}},
		TMC: adaptive.TMC{SampleRate: 100 * time.Millisecond},
	}
	speaker.OnNotification(func(connID uint32, n adaptive.Notification) {
		if n.Kind == adaptive.NotePolicyAction || n.Kind == adaptive.NotePeerReconfig {
			fmt.Printf("[%8v] speaker notification: %s\n", kernel.Now(), n.Detail)
		}
	})

	call, err := speaker.Dial(acd, &adaptive.DialOptions{LocalPort: 5004})
	if err != nil {
		log.Fatal(err)
	}
	tsc, _ := call.TSC()
	fmt.Printf("[%8v] call opened: %v, spec %v\n", kernel.Now(), tsc, call.Spec())

	voice := &workload.CBR{Timers: speaker.Stack().Timers(), Out: call, MsgSize: 480, Interval: 20 * time.Millisecond}
	kernel.Schedule(100*time.Millisecond, func() { voice.Start(0) })

	// t=3s: host 3 joins the live call.
	kernel.Schedule(3*time.Second, func() {
		fmt.Printf("[%8v] host 3 dials in\n", kernel.Now())
		network.Join(group, hosts[3].ID())
		call.AddParticipant(hosts[3].ID())
	})
	// t=5s: the speaker tightens FEC while streaming (explicit
	// reconfiguration; both ends segue without losing data).
	kernel.Schedule(5*time.Second, func() {
		fmt.Printf("[%8v] speaker tightens FEC group 8 -> 4 live\n", kernel.Now())
		call.Reconfigure(func(s *adaptive.Spec) { s.FECGroup = 4 })
	})
	// t=7s: host 1 hangs up.
	kernel.Schedule(7*time.Second, func() {
		fmt.Printf("[%8v] host 1 hangs up\n", kernel.Now())
		call.RemoveParticipant(hosts[1].ID())
		network.Leave(group, hosts[1].ID())
	})
	// t=9s: end of call.
	kernel.Schedule(9*time.Second, func() { voice.Stop() })

	kernel.RunUntil(10 * time.Second)

	fmt.Printf("\n--- call report (%d frames sent; hosts 1 and 3 were absent for part of the call) ---\n", voice.Generated)
	for i := 1; i <= 3; i++ {
		m := meters[i]
		if m.Messages == 0 {
			fmt.Printf("host %d: never joined\n", i)
			continue
		}
		fmt.Printf("host %d: %4d frames heard, p99 latency %6.2fms, mean jitter %5.2fms\n",
			i, m.Messages,
			m.Latency.Quantile(0.99)*1e3,
			m.Jitter.Mean()*1e3)
	}
	fmt.Printf("speaker: %d segues during the call, %d PDUs sent\n",
		call.Stats().Segues, call.Stats().SentPDUs)
}
