// A/V sync: temporal synchronization of related media streams — the
// "temporal synchronization (tele-conferencing)" requirement of §2.1B,
// layered on two MANTTS-coordinated sessions with different network fates.
//
// Audio travels a fast LAN segment (~3 ms transit); video a congested
// segment (~45 ms, jittery). Without synchronization the receiver would
// play sound 40+ ms ahead of pictures. The playout-point synchronizer
// releases both streams at capture time + one shared delay budget, and
// MANTTS divides the uplink rate budget between the two sessions by
// priority.
//
//	go run ./examples/avsync
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"adaptive"
	"adaptive/internal/mediasync"
	"adaptive/internal/message"
	"adaptive/internal/netsim"
	"adaptive/internal/sim"
	"adaptive/internal/unites"
)

func main() {
	kernel := sim.NewKernel(31)
	network := netsim.New(kernel)
	src, dst := network.AddHost(), network.AddHost()
	// One host pair, but media classes see different path behaviour
	// (modeled as a shared route with jitter; video frames are larger so
	// they queue behind cross traffic more).
	fwd := network.NewLink(netsim.LinkConfig{Bandwidth: 10e6, PropDelay: 3 * time.Millisecond, MTU: 1500, Jitter: 4 * time.Millisecond, QueueLen: 1 << 20})
	rev := network.NewLink(netsim.LinkConfig{Bandwidth: 10e6, PropDelay: 3 * time.Millisecond, MTU: 1500})
	network.SetRoute(src.ID(), dst.ID(), fwd)
	network.SetRoute(dst.ID(), src.ID(), rev)
	fwd.StartCrossTraffic(6e6, 1200) // the congestion that skews video

	sender, err := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(src.ID()), adaptive.WithName("studio"))
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(dst.ID()), adaptive.WithName("viewer"))
	if err != nil {
		log.Fatal(err)
	}

	// The receiver runs one synchronizer for both streams with an 80 ms
	// playout budget, and measures what arrival skew looked like first.
	arrivalSkew := unites.NewDistribution()
	playSkew := unites.NewDistribution()
	// Skew is measured between the audio and video units that share a
	// capture instant (video runs at half the audio cadence, so only
	// co-captured pairs compare).
	arrivals := map[time.Duration]map[int]time.Duration{}
	plays := map[time.Duration]map[int]time.Duration{}
	note := func(byCapture map[time.Duration]map[int]time.Duration, dist *unites.Distribution, stream int, captured time.Duration) {
		m, ok := byCapture[captured]
		if !ok {
			m = map[int]time.Duration{}
			byCapture[captured] = m
		}
		m[stream] = kernel.Now()
		if a, okA := m[1]; okA {
			if v, okV := m[2]; okV {
				d := (a - v).Seconds()
				if d < 0 {
					d = -d
				}
				dist.Add(d * 1e3) // ms
				delete(byCapture, captured)
			}
		}
	}
	sy := mediasync.New(receiver.Stack().Timers(), 80*time.Millisecond, func(u mediasync.Unit) {
		note(plays, playSkew, u.Stream, u.Captured)
		u.Msg.Release()
	})

	accept := func(stream int) func(*adaptive.Conn) {
		return func(c *adaptive.Conn) {
			// Reassemble transport segments into media units (frames):
			// only the completed frame carries a meaningful capture stamp.
			var frame []byte
			c.OnReceive(func(data []byte, eom bool) {
				frame = append(frame, data...)
				if !eom {
					return
				}
				if len(frame) >= 8 {
					captured := time.Duration(binary.BigEndian.Uint64(frame))
					note(arrivals, arrivalSkew, stream, captured)
					sy.Submit(stream, captured, message.NewFromBytes(frame))
				}
				frame = nil
			})
		}
	}
	receiver.Listen(5004, nil, accept(1)) // audio
	receiver.Listen(5006, nil, accept(2)) // video

	// Two related sessions from one ACD family; MANTTS coordinates their
	// pacing by priority (video gets the bigger share of the 8 Mbps
	// budget).
	mediaACD := func(port uint16, avg float64, prio int) *adaptive.ACD {
		return &adaptive.ACD{
			Participants: []adaptive.Addr{receiver.Addr()},
			RemotePort:   port,
			Quant: adaptive.QuantQoS{
				AvgThroughputBps: avg,
				MaxLatency:       150 * time.Millisecond,
				MaxJitter:        20 * time.Millisecond,
				LossTolerance:    0.05,
			},
			Qual: adaptive.QualQoS{Priority: prio},
		}
	}
	audio, err := sender.Dial(mediaACD(5004, 64e3, 1), &adaptive.DialOptions{LocalPort: 5004})
	if err != nil {
		log.Fatal(err)
	}
	video, err := sender.Dial(mediaACD(5006, 2e6, 3), &adaptive.DialOptions{LocalPort: 5006})
	if err != nil {
		log.Fatal(err)
	}
	sender.Entity().CoordinateRates(8e6, audio.ConnID(), video.ConnID())
	fmt.Printf("audio session: %v\nvideo session: %v\n", audio.Spec(), video.Spec())
	fmt.Printf("coordinated pacing: audio %.2f Mbps, video %.2f Mbps (priority 1:3 of an 8 Mbps budget)\n\n",
		audio.Spec().RateBps/1e6, video.Spec().RateBps/1e6)

	// Capture loop: every 20 ms an audio frame and (every 40 ms) a video
	// frame stamped with the same capture clock.
	tick := 0
	sender.Stack().Timers().SchedulePeriodic(0, 20*time.Millisecond, func() {
		captured := kernel.Now()
		stamp := func(size int) []byte {
			b := make([]byte, size)
			binary.BigEndian.PutUint64(b, uint64(captured))
			return b
		}
		audio.Send(stamp(160))
		if tick%2 == 0 {
			video.Send(stamp(9000))
		}
		tick++
	})

	kernel.RunUntil(10 * time.Second)

	fmt.Printf("arrival skew between streams: mean %.1f ms, p95 %.1f ms\n",
		arrivalSkew.Mean(), arrivalSkew.Quantile(0.95))
	fmt.Printf("playout skew after synchronization: mean %.2f ms, p95 %.2f ms\n",
		playSkew.Mean(), playSkew.Quantile(0.95))
	a, v := sy.Stats(1), sy.Stats(2)
	fmt.Printf("audio: %d played, %d late | video: %d played, %d late (budget 80 ms, video max transit %v)\n",
		a.Played, a.Late, v.Played, v.Late, v.MaxTransit.Round(time.Millisecond))
}
