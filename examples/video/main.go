// Video: distributional full-motion video under changing network
// conditions, with policy-driven adaptation.
//
// A server streams 30 fps compressed video (bursty VBR: large intra frames,
// small deltas) to a client over a 10 Mbps path. Two minutes in (simulated),
// cross traffic congests the bottleneck. The ACD's TSA rules respond the way
// §4.1.2 prescribes: the rate-control mechanism's inter-PDU gap grows
// ("increase the inter-PDU gap used by the rate control mechanism in
// response to perceived network congestion"), and the application is
// notified via call-back so it can switch to a coarser coding layer.
//
//	go run ./examples/video
package main

import (
	"fmt"
	"log"
	"time"

	"adaptive"
	"adaptive/internal/netsim"
	"adaptive/internal/sim"
	"adaptive/internal/workload"
)

func main() {
	kernel := sim.NewKernel(99)
	network := netsim.New(kernel)
	server, client := network.AddHost(), network.AddHost()
	mk := func() netsim.LinkConfig {
		return netsim.LinkConfig{Bandwidth: 10e6, PropDelay: 5 * time.Millisecond, MTU: 1500, QueueLen: 64000, DropRate: 0.002}
	}
	down := network.NewLink(mk())
	network.SetRoute(server.ID(), client.ID(), down)
	network.SetRoute(client.ID(), server.ID(), network.NewLink(mk()))

	srv, err := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(server.ID()), adaptive.WithName("video-server"))
	if err != nil {
		log.Fatal(err)
	}
	cli, err := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(client.ID()), adaptive.WithName("video-client"))
	if err != nil {
		log.Fatal(err)
	}

	meter := workload.NewMeter(kernel)
	cli.Listen(554, nil, func(c *adaptive.Conn) { c.OnDelivery(meter.OnDeliver) })

	// Full-motion video (comp): high throughput, delay sensitive,
	// moderately loss tolerant — plus TSA rules for congestion response.
	acd := &adaptive.ACD{
		Participants: []adaptive.Addr{cli.Addr()},
		RemotePort:   554,
		Quant: adaptive.QuantQoS{
			AvgThroughputBps:  4e6,
			PeakThroughputBps: 8e6,
			MaxLatency:        200 * time.Millisecond,
			MaxJitter:         30 * time.Millisecond,
			LossTolerance:     0.02,
		},
		TSA: []adaptive.Rule{
			{
				// Congestion response: halve the pacing rate.
				Cond:     adaptive.Cond{Metric: adaptive.MetricLossRate, Op: adaptive.OpGT, Threshold: 0.03},
				Action:   adaptive.Action{Kind: adaptive.ActScaleRate, Factor: 0.5},
				Cooldown: 2 * time.Second,
			},
			{
				// Tell the codec to drop an enhancement layer.
				Cond:     adaptive.Cond{Metric: adaptive.MetricLossRate, Op: adaptive.OpGT, Threshold: 0.03},
				Action:   adaptive.Action{Kind: adaptive.ActNotifyApp, Note: "congestion: drop enhancement layer"},
				Cooldown: 2 * time.Second,
			},
			{
				// Recovery response: restore rate when the path clears.
				Cond:     adaptive.Cond{Metric: adaptive.MetricLossRate, Op: adaptive.OpLT, Threshold: 0.005},
				Action:   adaptive.Action{Kind: adaptive.ActScaleRate, Factor: 1.5},
				Cooldown: 2 * time.Second,
			},
		},
		TMC: adaptive.TMC{SampleRate: 200 * time.Millisecond},
	}

	var rateLog []string
	var video *workload.VBR
	const fullLayerMean = 16000
	srv.OnNotification(func(_ uint32, n adaptive.Notification) {
		switch n.Kind {
		case adaptive.NotePolicyAction, adaptive.NoteAppLoss:
			rateLog = append(rateLog, fmt.Sprintf("[%8v] %s", kernel.Now(), n.Detail))
		}
		// The application-specific call-back path (§4.1.2): the codec
		// drops an enhancement layer when the transport reports
		// congestion.
		if n.Kind == adaptive.NotePolicyAction && video != nil &&
			n.Detail == `notify-app("congestion: drop enhancement layer")` {
			video.MeanSize = fullLayerMean / 4
			rateLog = append(rateLog, fmt.Sprintf("[%8v] codec: enhancement layer dropped (mean frame %d B)", kernel.Now(), video.MeanSize))
		}
	})

	stream, err := srv.Dial(acd, &adaptive.DialOptions{LocalPort: 554})
	if err != nil {
		log.Fatal(err)
	}
	tsc, _ := stream.TSC()
	fmt.Printf("stream opened: %v\nconfig: %v\n\n", tsc, stream.Spec())

	video = &workload.VBR{
		Timers: srv.Stack().Timers(), Out: stream,
		FrameRate: 30, MeanSize: fullLayerMean, Burst: 5, GroupLen: 12,
	}
	kernel.Schedule(50*time.Millisecond, func() { video.Start(0) })

	// Congestion window: cross traffic at 70% of the bottleneck during
	// [4s, 8s).
	kernel.Schedule(4*time.Second, func() {
		fmt.Println("[      4s] cross traffic begins (70% of bottleneck)")
		down.StartCrossTraffic(7e6, 1000)
	})
	kernel.Schedule(8*time.Second, func() {
		fmt.Println("[      8s] cross traffic ends; codec restores the full layer")
		down.StartCrossTraffic(0, 0)
		video.MeanSize = fullLayerMean
	})
	kernel.Schedule(12*time.Second, func() { video.Stop() })
	kernel.RunUntil(13 * time.Second)

	fmt.Println("\n--- policy actions during the stream ---")
	for _, l := range rateLog {
		fmt.Println(l)
	}
	fmt.Printf("\n--- delivered quality (%d frames sent, %.1f MB) ---\n",
		video.Generated, float64(video.BytesOut)/1e6)
	fmt.Printf("frames delivered intact: %d (%.1f%%)\n",
		meter.Messages, 100*float64(meter.Messages)/float64(video.Generated))
	fmt.Printf("p50/p99 frame latency: %.1f / %.1f ms\n",
		meter.Latency.Quantile(0.5)*1e3, meter.Latency.Quantile(0.99)*1e3)
	fmt.Printf("mean jitter: %.2f ms | bytes delivered: %.1f MB\n",
		meter.Jitter.Mean()*1e3, float64(meter.Bytes)/1e6)
	fmt.Printf("final pacing rate: %.2f Mbps (started at %.2f Mbps)\n",
		stream.Spec().RateBps/1e6, 8e6*1.1/1e6)
}
