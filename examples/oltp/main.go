// OLTP: latency-bound request-response transactions, demonstrating why
// implicit connection management exists (§4.1.1: "useful for
// latency-sensitive applications (e.g., request-response-style network file
// servers) that must not incur any QoS negotiation delay").
//
// A client runs short transactions against a server across a 50 ms-RTT WAN,
// first over ADAPTIVE's implicit-setup configuration (the session config
// rides the first data PDU), then over a TCP-like 3-way-handshake baseline.
// Each transaction uses a fresh connection — the pathological-but-common
// OLTP pattern the handshake tax punishes.
//
//	go run ./examples/oltp
package main

import (
	"fmt"
	"log"
	"time"

	"adaptive"
	"adaptive/internal/baseline"
	"adaptive/internal/mantts"
	"adaptive/internal/netsim"
	"adaptive/internal/sim"
	"adaptive/internal/unites"
)

const transactions = 50

func main() {
	implicitTimes := run(false)
	explicitTimes := run(true)

	fmt.Println("50 single-connection transactions, 25 ms one-way WAN, 256 B requests:")
	fmt.Printf("%-42s p50=%6.1fms  p99=%6.1fms\n",
		"ADAPTIVE (implicit connection management):",
		implicitTimes.Quantile(0.5)*1e3, implicitTimes.Quantile(0.99)*1e3)
	fmt.Printf("%-42s p50=%6.1fms  p99=%6.1fms\n",
		"RDTP baseline (3-way handshake):",
		explicitTimes.Quantile(0.5)*1e3, explicitTimes.Quantile(0.99)*1e3)
	saved := explicitTimes.Quantile(0.5) - implicitTimes.Quantile(0.5)
	fmt.Printf("\nimplicit setup saves ~%.0f ms per transaction — one round trip of handshake\n", saved*1e3)
}

// run executes the transaction series and returns the response-time
// distribution.
func run(useBaseline bool) *unites.Distribution {
	kernel := sim.NewKernel(123)
	network := netsim.New(kernel)
	clientHost, serverHost := network.AddHost(), network.AddHost()
	link := netsim.LinkConfig{Bandwidth: 10e6, PropDelay: 25 * time.Millisecond, MTU: 1500}
	network.SetRoute(clientHost.ID(), serverHost.ID(), network.NewLink(link))
	network.SetRoute(serverHost.ID(), clientHost.ID(), network.NewLink(link))

	client, err := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(clientHost.ID()))
	if err != nil {
		log.Fatal(err)
	}
	server, err := adaptive.NewNode(adaptive.WithProvider(network), adaptive.WithHost(serverHost.ID()))
	if err != nil {
		log.Fatal(err)
	}
	client.SeedPath(serverHost.ID(), mantts.StaticPathInfo{Bandwidth: 10e6, RTT: 50 * time.Millisecond, MTU: 1500})

	// Transaction server: echo a 256-byte result for each request, then
	// let the client close.
	server.Listen(1521, nil, func(c *adaptive.Conn) {
		c.OnReceive(func(data []byte, eom bool) {
			if eom {
				c.Send(make([]byte, 256))
			}
		})
	})

	times := unites.NewDistribution()
	var runTxn func(i int)
	runTxn = func(i int) {
		if i >= transactions {
			return
		}
		start := kernel.Now()
		var conn *adaptive.Conn
		var err error
		if useBaseline {
			conn, err = client.DialSpec(baseline.RDTPSpec(), server.Addr(), uint16(2000+i), 1521)
		} else {
			conn, err = client.Dial(&adaptive.ACD{
				Participants: []adaptive.Addr{server.Addr()},
				RemotePort:   1521,
				Quant: adaptive.QuantQoS{
					MaxLatency: 100 * time.Millisecond, // latency-bound
					Duration:   200 * time.Millisecond, // short-lived
				},
				Qual: adaptive.QualQoS{Ordered: true},
			}, &adaptive.DialOptions{LocalPort: uint16(2000 + i)})
		}
		if err != nil {
			log.Fatal(err)
		}
		conn.OnReceive(func(data []byte, eom bool) {
			if !eom {
				return
			}
			times.Add((kernel.Now() - start).Seconds())
			conn.Close()
			// Think time, then the next transaction.
			client.Stack().Timers().Schedule(10*time.Millisecond, func() { runTxn(i + 1) })
		})
		conn.Send(make([]byte, 256))
	}
	runTxn(0)
	kernel.RunUntil(5 * time.Minute)
	if times.Count != transactions {
		log.Fatalf("only %d of %d transactions completed", times.Count, transactions)
	}
	return times
}
